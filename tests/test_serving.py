"""Tests for the serving stack: artifacts, compiled models, registry,
micro-batching and the HTTP front end."""

import json
import os
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.asm.alphabet import ALPHA_1, ALPHA_2
from repro.asm.constraints import WeightConstrainer
from repro.asm.multiplier import AlphabetSetMultiplier
from repro.datasets.registry import lenet, mlp
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.serving import (
    ArtifactIntegrityError,
    BatchSettings,
    CompiledModel,
    DeadlineExceededError,
    MicroBatcher,
    ModelRegistry,
    QueueFullError,
    ServingMetrics,
    create_server,
    load_artifact,
    read_manifest,
)
from repro.serving.artifact import ARRAYS_NAME, MANIFEST_NAME, ArtifactError

RNG = np.random.default_rng(7)


def make_quantized(seed: int = 3, constrained: bool = True,
                   use_lut: bool = False) -> QuantizedNetwork:
    """A small (untrained) digits MLP lowered onto the ASM engine."""
    net = mlp([1024, 24, 10], seed=seed, name="digits")
    if constrained:
        spec = QuantizationSpec(8, ALPHA_2,
                                constrainer=WeightConstrainer(8, ALPHA_2))
    else:
        spec = QuantizationSpec(8)
    return QuantizedNetwork.from_float(net, spec, use_lut=use_lut)


@pytest.fixture
def exported(tmp_path):
    quantized = make_quantized()
    path = quantized.export(str(tmp_path / "digits"))
    return quantized, path


def sample_batch(n: int = 16) -> np.ndarray:
    return RNG.uniform(-1.0, 1.0, size=(n, 1024))


class TestArtifactRoundTrip:
    def test_logits_bit_identical(self, exported):
        quantized, path = exported
        x = sample_batch()
        reloaded = load_artifact(path)
        assert np.array_equal(quantized.forward(x), reloaded.forward(x))
        assert reloaded.spec.label == quantized.spec.label
        assert reloaded.name == "digits"

    def test_compiled_bit_identical(self, exported):
        quantized, path = exported
        x = sample_batch()
        compiled = CompiledModel.load(path)
        assert np.array_equal(quantized.forward(x), compiled.forward(x))
        assert np.array_equal(quantized.predict(x), compiled.predict(x))

    def test_lut_round_trip(self, tmp_path):
        quantized = make_quantized(use_lut=True)
        path = quantized.export(str(tmp_path / "lut"))
        x = sample_batch(8)
        assert np.array_equal(quantized.forward(x),
                              CompiledModel.load(path).forward(x))

    def test_conv_round_trip(self, tmp_path):
        net = lenet(10, seed=1)
        spec = QuantizationSpec(12, ALPHA_2,
                                constrainer=WeightConstrainer(12, ALPHA_2))
        quantized = QuantizedNetwork.from_float(net, spec)
        path = quantized.export(str(tmp_path / "lenet"))
        x = RNG.uniform(-1.0, 1.0, size=(3, 1, 32, 32))
        compiled = CompiledModel.load(path)
        assert np.array_equal(quantized.forward(x), compiled.forward(x))
        assert compiled.input_spatial == (32, 32)
        # conv topology and energy derive from the stored spatial metadata
        assert compiled.energy_per_inference_nj() > 0

    def test_manifest_metadata(self, exported):
        _, path = exported
        manifest = read_manifest(path)
        assert manifest["bits"] == 8
        assert manifest["alphabets"] == [1, 3]
        assert manifest["constrainer_mode"] == "greedy"

    def test_corrupted_array_rejected(self, exported):
        _, path = exported
        arrays_path = os.path.join(path, ARRAYS_NAME)
        with np.load(arrays_path) as data:
            arrays = {key: data[key].copy() for key in data.files}
        arrays["layer0:w_int"][0, 0] += 1
        np.savez(arrays_path, **arrays)
        with pytest.raises(ArtifactIntegrityError, match="integrity hash"):
            load_artifact(path)

    def test_corrupted_manifest_rejected(self, exported):
        _, path = exported
        manifest_path = os.path.join(path, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["bits"] = 12          # tamper without updating checksum
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            load_artifact(path)

    def test_missing_bundle_rejected(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        with pytest.raises(ArtifactError):
            load_artifact(str(empty))

    def test_mixed_layer_specs_preserved(self, tmp_path):
        from repro.asm.alphabet import ALPHA_4
        from repro.hardware.engine import ProcessingEngine

        net = mlp([64, 16, 10], seed=5, name="mixed")
        base = QuantizationSpec(8, ALPHA_4,
                                constrainer=WeightConstrainer(8, ALPHA_4))
        layer_specs = [
            QuantizationSpec(8, ALPHA_4,
                             constrainer=WeightConstrainer(8, ALPHA_4)),
            QuantizationSpec(8, ALPHA_2,
                             constrainer=WeightConstrainer(8, ALPHA_2)),
        ]
        quantized = QuantizedNetwork.from_float(net, base,
                                                layer_specs=layer_specs)
        path = quantized.export(str(tmp_path / "mixed"))
        manifest = read_manifest(path)
        assert [entry["alphabets"] for entry in manifest["layers"]] == \
            [[1, 3, 5, 7], [1, 3]]
        compiled = CompiledModel.load(path)
        x = RNG.uniform(-1.0, 1.0, size=(4, 64))
        assert np.array_equal(quantized.forward(x), compiled.forward(x))
        # energy must be costed with each layer's own alphabet set
        expected = ProcessingEngine(8, ALPHA_4).run(
            compiled.topology(),
            layer_alphabets=[ALPHA_4, ALPHA_2]).energy_nj
        assert compiled.energy_per_inference_nj() == pytest.approx(expected)


class TestTableMemoization:
    def test_effective_weight_table_shared(self):
        a = AlphabetSetMultiplier(8, ALPHA_2, fallback="nearest")
        b = AlphabetSetMultiplier(8, ALPHA_2, fallback="nearest")
        table_a = a.effective_weight_table()
        assert table_a is b.effective_weight_table()
        assert not table_a.flags.writeable

    def test_constrainer_table_shared(self):
        a = WeightConstrainer(8, ALPHA_1)
        b = WeightConstrainer(8, ALPHA_1)
        assert a._table is b._table
        # results still writable (fancy indexing copies)
        out = a.constrain_array(np.array([5, -7]))
        out += 1


class TestRegistry:
    def test_register_get_latest(self, exported):
        _, path = exported
        registry = ModelRegistry()
        entry1 = registry.register(path, name="digits")
        entry2 = registry.register(CompiledModel.load(path), name="digits")
        assert (entry1.version, entry2.version) == (1, 2)
        assert registry.get("digits") is entry2.model
        assert registry.get("digits", version=1) is entry1.model
        assert len(registry) == 2 and "digits" in registry

    def test_duplicate_version_rejected(self, exported):
        _, path = exported
        registry = ModelRegistry()
        registry.register(path, name="digits", version=3)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(path, name="digits", version=3)

    def test_unknown_lookup(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.get("missing")

    def test_evict(self, exported):
        _, path = exported
        registry = ModelRegistry()
        registry.register(path, name="digits")
        registry.register(path, name="digits")
        assert registry.evict("digits", version=1) == 1
        assert registry.evict("digits") == 1
        assert registry.evict("digits") == 0
        assert len(registry) == 0

    def test_list_models(self, exported):
        _, path = exported
        registry = ModelRegistry()
        registry.register(path, name="b")
        registry.register(path, name="a")
        assert [entry.key for entry in registry.list_models()] == \
            ["a@v1", "b@v1"]

    def test_evicted_versions_not_reused(self, exported):
        _, path = exported
        registry = ModelRegistry()
        registry.register(path, name="digits")            # v1
        registry.register(path, name="digits")            # v2
        registry.evict("digits", version=2)               # rollback
        entry = registry.register(path, name="digits")
        assert entry.version == 3                         # never v2 again
        registry.evict("digits")                          # evict the name
        assert registry.register(path, name="digits").version == 4


class TestMicroBatcher:
    def test_concurrent_submitters_bit_identical(self, exported):
        quantized, path = exported
        compiled = CompiledModel.load(path)
        x = sample_batch(48)
        reference = quantized.forward(x)
        metrics = ServingMetrics()
        results: dict[int, np.ndarray] = {}
        with MicroBatcher(lambda key: compiled,
                          BatchSettings(max_batch_size=16,
                                        max_latency_ms=20.0),
                          metrics=metrics) as batcher:
            def submit_range(start: int, stop: int) -> None:
                futures = [(i, batcher.submit("digits", x[i]))
                           for i in range(start, stop)]
                for i, future in futures:
                    results[i] = future.result(timeout=10.0)

            threads = [threading.Thread(target=submit_range,
                                        args=(t * 12, (t + 1) * 12))
                       for t in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        stacked = np.concatenate([results[i] for i in range(48)], axis=0)
        assert np.array_equal(stacked, reference)
        snapshot = metrics.snapshot()
        assert snapshot["batches_total"] >= 1
        # coalescing happened: fewer forward passes than requests
        assert snapshot["batches_total"] < 48

    def test_multi_model_grouping(self, exported, tmp_path):
        _, path = exported
        other = make_quantized(seed=9, constrained=False)
        other_path = other.export(str(tmp_path / "other"))
        registry = ModelRegistry()
        registry.register(path, name="digits")
        registry.register(other_path, name="other")
        x = sample_batch(6)
        with MicroBatcher(lambda key: registry.get(*key),
                          BatchSettings(max_latency_ms=10.0)) as batcher:
            futures = [(key, batcher.submit((key, None), x))
                       for key in ("digits", "other")]
            outputs = {key: future.result(timeout=10.0)
                       for key, future in futures}
        assert np.array_equal(outputs["digits"],
                              registry.get("digits").forward(x))
        assert np.array_equal(outputs["other"],
                              registry.get("other").forward(x))

    def test_unknown_model_sets_exception(self):
        registry = ModelRegistry()
        with MicroBatcher(lambda key: registry.get(*key),
                          BatchSettings(max_latency_ms=0.0)) as batcher:
            future = batcher.submit(("missing", None), np.zeros(4))
            with pytest.raises(KeyError):
                future.result(timeout=10.0)

    def test_submit_after_close_rejected(self, exported):
        _, path = exported
        compiled = CompiledModel.load(path)
        batcher = MicroBatcher(lambda key: compiled)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit("digits", np.zeros(1024))

    def test_bad_rank_rejected(self, exported):
        _, path = exported
        compiled = CompiledModel.load(path)
        with MicroBatcher(lambda key: compiled) as batcher:
            with pytest.raises(ValueError):
                batcher.submit("digits", np.zeros((2, 2, 2, 2, 2)))

    def test_malformed_corider_does_not_poison_batch(self, exported):
        quantized, path = exported
        compiled = CompiledModel.load(path)
        x = sample_batch(2)
        with MicroBatcher(lambda key: compiled,
                          BatchSettings(max_latency_ms=50.0)) as batcher:
            good = batcher.submit("digits", x)
            bad = batcher.submit("digits", np.zeros(10))  # wrong width
            assert np.array_equal(good.result(timeout=10.0),
                                  quantized.forward(x))
            with pytest.raises(ValueError):
                bad.result(timeout=10.0)

    def test_cancelled_future_does_not_kill_worker(self, exported):
        quantized, path = exported
        compiled = CompiledModel.load(path)
        x = sample_batch(2)
        with MicroBatcher(lambda key: compiled,
                          BatchSettings(max_latency_ms=0.0)) as batcher:
            for _ in range(20):
                batcher.submit("digits", x[0]).cancel()
            # worker must still be alive and serving after cancel races
            scores = batcher.predict("digits", x, timeout=10.0)
        assert np.array_equal(scores, quantized.forward(x))


class TestServingMetrics:
    def test_latency_percentiles_interpolate(self):
        metrics = ServingMetrics()
        for ms in range(1, 11):                    # 100 ms .. 1000 ms
            metrics.record_request(model="m@v1", samples=1,
                                   latency_s=ms / 10.0)
        latency = metrics.snapshot()["latency_ms"]
        # linear interpolation: p50 of 10 evenly spaced points sits
        # between the 5th and 6th order statistics, not on either
        assert latency["p50"] == pytest.approx(550.0)
        assert latency["p95"] == pytest.approx(955.0)
        assert latency["max"] == pytest.approx(1000.0)

    def test_per_model_breakdown_and_energy(self):
        metrics = ServingMetrics()
        metrics.record_request(model="a@v1", samples=2, latency_s=0.01,
                               energy_nj=10.0)
        metrics.record_request(model="b@v1", samples=3, latency_s=0.02,
                               energy_nj=30.0)
        snapshot = metrics.snapshot()
        assert snapshot["models"] == {
            "a@v1": {"requests": 1, "samples": 2, "energy_nj": 10.0},
            "b@v1": {"requests": 1, "samples": 3, "energy_nj": 30.0},
        }
        assert snapshot["energy"]["total_nj"] == pytest.approx(40.0)
        body = metrics.to_prometheus()
        assert 'serving_model_energy_nj{model="a@v1"} 10' in body


@pytest.fixture
def running_server(exported):
    _, path = exported
    registry = ModelRegistry()
    registry.register(path, name="digits")
    server = create_server(registry,
                           settings=BatchSettings(max_latency_ms=2.0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", exported[0]
    server.shutdown()
    thread.join(timeout=5.0)


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return json.loads(response.read())


def _post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return json.loads(response.read())


class TestServer:
    def test_predict_matches_quantized(self, running_server):
        base, quantized = running_server
        x = sample_batch(5)
        response = _post(f"{base}/predict",
                         {"model": "digits", "inputs": x.tolist()})
        assert response["predictions"] == quantized.predict(x).tolist()
        assert np.array_equal(np.asarray(response["scores"]),
                              quantized.forward(x))
        assert response["energy_nj_est"] > 0

    def test_health_models_stats(self, running_server):
        base, _ = running_server
        assert _get(f"{base}/health") == {"status": "ok",
                                          "models": ["digits@v1"]}
        models = _get(f"{base}/models")["models"]
        assert models[0]["name"] == "digits"
        assert models[0]["spec"] == "8b-asm2-constrained"
        x = sample_batch(3)
        _post(f"{base}/predict", {"model": "digits", "inputs": x.tolist()})
        stats = _get(f"{base}/stats")
        assert stats["requests_total"] >= 1
        assert stats["samples_total"] >= 3
        assert stats["energy"]["total_nj"] > 0

    def test_unknown_model_404(self, running_server):
        base, _ = running_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{base}/predict",
                  {"model": "nope", "inputs": [[0.0] * 1024]})
        assert excinfo.value.code == 404

    def test_bad_body_400(self, running_server):
        base, _ = running_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{base}/predict", {"inputs": [[0.0] * 1024]})
        assert excinfo.value.code == 400

    def test_stats_exposes_queue_depth_and_errors(self, running_server):
        base, _ = running_server
        stats = _get(f"{base}/stats")
        assert stats["queue_depth"] == 0          # idle server, live poll
        before = stats["errors_total"]
        with pytest.raises(urllib.error.HTTPError):
            _post(f"{base}/predict",
                  {"model": "nope", "inputs": [[0.0] * 1024]})
        assert _get(f"{base}/stats")["errors_total"] == before + 1

    def test_metrics_endpoint_prometheus(self, running_server):
        base, _ = running_server
        x = sample_batch(2)
        _post(f"{base}/predict", {"model": "digits", "inputs": x.tolist()})
        request = urllib.request.urlopen(f"{base}/metrics", timeout=10.0)
        with request as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain")
            body = response.read().decode()
        assert "# TYPE serving_requests counter" in body
        assert "serving_requests 1" in body
        assert "serving_queue_depth 0" in body
        assert 'serving_model_samples{model="digits@v1"} 2' in body
        assert "serving_latency_seconds_count 1" in body


# ----------------------------------------------------------------------
# overload hardening: admission control, deadlines, worker isolation
# ----------------------------------------------------------------------
class _GatedModel:
    """Forward pass that blocks until released — a stand-in for a slow
    model, used to hold the batcher worker busy deterministically."""

    def __init__(self, inner):
        self.inner = inner
        self.started = threading.Event()
        self.gate = threading.Event()

    def forward(self, x):
        self.started.set()
        assert self.gate.wait(timeout=30.0)
        return self.inner.forward(x)


class TestOverloadHardening:
    def test_settings_validated(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            BatchSettings(max_queue_depth=-1)
        with pytest.raises(ValueError, match="deadline_s"):
            BatchSettings(deadline_s=0.0)

    def test_submit_sheds_when_queue_full(self, exported):
        _, path = exported
        model = _GatedModel(CompiledModel.load(path))
        metrics = ServingMetrics()
        x = sample_batch(1)
        with MicroBatcher(lambda key: model,
                          BatchSettings(max_latency_ms=0.0,
                                        max_queue_depth=2),
                          metrics=metrics) as batcher:
            held = batcher.submit("digits", x)      # occupies the worker
            assert model.started.wait(timeout=10.0)
            queued = [batcher.submit("digits", x) for _ in range(2)]
            assert batcher.overloaded()
            with pytest.raises(QueueFullError, match="depth bound"):
                batcher.submit("digits", x)
            assert metrics.snapshot()["shed_total"] == 1
            model.gate.set()
            for future in [held, *queued]:
                assert future.result(timeout=10.0).shape == (1, 10)
            assert not batcher.overloaded()

    def test_deadline_expired_request_dropped(self, exported):
        _, path = exported
        model = _GatedModel(CompiledModel.load(path))
        metrics = ServingMetrics()
        x = sample_batch(1)
        with MicroBatcher(lambda key: model,
                          BatchSettings(max_latency_ms=0.0,
                                        deadline_s=0.05),
                          metrics=metrics) as batcher:
            held = batcher.submit("digits", x)      # occupies the worker
            assert model.started.wait(timeout=10.0)
            late = batcher.submit("digits", x)      # queues behind it
            time.sleep(0.2)                         # ...past its deadline
            model.gate.set()
            assert held.result(timeout=10.0).shape == (1, 10)
            with pytest.raises(DeadlineExceededError, match="deadline"):
                late.result(timeout=10.0)
        assert metrics.snapshot()["deadline_expired_total"] == 1

    def test_worker_survives_flush_machinery_error(self, exported):
        quantized, path = exported
        compiled = CompiledModel.load(path)

        class HostileMetrics(ServingMetrics):
            raised = False

            def record_batch(self, size):
                if not HostileMetrics.raised:
                    HostileMetrics.raised = True
                    raise RuntimeError("metrics backend down")
                super().record_batch(size)

        x = sample_batch(2)
        with MicroBatcher(lambda key: compiled,
                          BatchSettings(max_latency_ms=0.0),
                          metrics=HostileMetrics()) as batcher:
            poisoned = batcher.submit("digits", x)
            with pytest.raises(RuntimeError, match="metrics backend"):
                poisoned.result(timeout=10.0)
            # the worker thread absorbed the error and still serves
            scores = batcher.predict("digits", x, timeout=10.0)
        assert np.array_equal(scores, quantized.forward(x))

    def test_close_resolves_inflight_requests(self, exported):
        quantized, path = exported
        compiled = CompiledModel.load(path)

        class Slow:
            def forward(self, x):
                time.sleep(0.02)
                return compiled.forward(x)

        x = sample_batch(2)
        batcher = MicroBatcher(lambda key: Slow(),
                               BatchSettings(max_latency_ms=0.0))
        futures = [batcher.submit("digits", x) for _ in range(6)]
        batcher.close(timeout=30.0)     # drains, never abandons a future
        for future in futures:
            assert np.array_equal(future.result(timeout=1.0),
                                  quantized.forward(x))


@pytest.fixture
def overload_server(exported):
    """A running server with a depth-1 queue and a gate-blocked model."""
    _, path = exported
    registry = ModelRegistry()
    registry.register(path, name="digits")
    server = create_server(registry,
                           settings=BatchSettings(max_latency_ms=0.0,
                                                  max_queue_depth=1))
    model = _GatedModel(CompiledModel.load(path))
    server.batcher._resolve = lambda key: model
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", server, model
    model.gate.set()
    server.shutdown()
    thread.join(timeout=5.0)


class TestServerHardening:
    def test_non_dict_json_body_is_400_not_500(self, running_server):
        base, _ = running_server
        for payload in (b"[1, 2, 3]", b'"predict"'):
            request = urllib.request.Request(
                f"{base}/predict", data=payload,
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert "JSON object" in body["error"]

    def test_healthz_ready_when_idle(self, running_server):
        base, _ = running_server
        assert _get(f"{base}/healthz") == {"status": "ready"}

    def test_overload_sheds_503_and_healthz_flips(self, overload_server):
        base, server, model = overload_server
        x = sample_batch(1)
        held = server.batcher.submit(("digits", 1), x)
        assert model.started.wait(timeout=10.0)
        queued = server.batcher.submit(("digits", 1), x)
        assert server.batcher.overloaded()

        # predict sheds with 503 + Retry-After while the queue is full
        request = urllib.request.Request(
            f"{base}/predict",
            data=json.dumps({"model": "digits",
                             "inputs": x.tolist()}).encode(),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Retry-After"] == "1"
        assert "depth bound" in json.loads(excinfo.value.read())["error"]

        # the readiness probe flips not-ready while shedding ...
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/healthz", timeout=10.0)
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["status"] == "overloaded"

        # ... and recovers once the queue drains
        model.gate.set()
        for future in (held, queued):
            future.result(timeout=10.0)
        assert _get(f"{base}/healthz") == {"status": "ready"}
        assert _get(f"{base}/stats")["shed_total"] == 1
