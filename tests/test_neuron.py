"""Tests for neuron datapath designs and the iso-speed comparisons.

The classes under ``TestPaperFig8`` / ``TestPaperFig10`` assert the paper's
headline hardware claims hold in the model, with tolerances documented in
EXPERIMENTS.md.
"""

import pytest

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, FULL_ALPHABETS
from repro.hardware.neuron import (
    CLOCK_GHZ,
    ASMNeuron,
    ConventionalNeuron,
    NeuronConfig,
    clock_for_bits,
    make_neuron,
)
from repro.hardware.technology import IBM45


@pytest.fixture(scope="module")
def costs():
    """Iso-speed costs for every design at both widths."""
    table = {}
    for bits in (8, 12):
        table[(bits, "conv")] = make_neuron(bits).cost()
        for aset in (ALPHA_4, ALPHA_2, ALPHA_1):
            table[(bits, len(aset))] = make_neuron(bits, aset).cost()
    return table


class TestFactory:
    def test_conventional(self):
        assert isinstance(make_neuron(8), ConventionalNeuron)

    def test_asm(self):
        design = make_neuron(8, ALPHA_4)
        assert isinstance(design, ASMNeuron)
        assert not design.is_man

    def test_man(self):
        design = make_neuron(8, ALPHA_1)
        assert design.is_man
        assert design.name == "man-8b-1a"

    def test_default_clocks(self):
        assert make_neuron(8).clock_ghz == CLOCK_GHZ[8] == 3.0
        assert make_neuron(12).clock_ghz == CLOCK_GHZ[12] == 2.5

    def test_unusual_width_borrows_nearest_clock(self):
        # widths off Table V borrow the nearest published clock (the
        # design-space explorer sweeps arbitrary word widths)
        assert clock_for_bits(16) == CLOCK_GHZ[12]
        assert clock_for_bits(6) == CLOCK_GHZ[8]
        assert clock_for_bits(10) == CLOCK_GHZ[8]  # tie -> narrower
        assert make_neuron(16).clock_ghz == CLOCK_GHZ[12]
        assert make_neuron(16, clock_ghz=2.0).clock_ghz == 2.0


class TestStructure:
    def test_man_has_no_bank_stage(self):
        design = make_neuron(8, ALPHA_1)
        assert "bank" not in [stage.name for stage in design.stages]

    def test_asm_has_bank_stage(self):
        design = make_neuron(8, ALPHA_2)
        assert "bank" in [stage.name for stage in design.stages]

    def test_conventional_has_multiplier(self):
        design = make_neuron(8)
        parts = [c.name for stage in design.stages for c, _ in stage.parts]
        assert any(name.startswith("mult") for name in parts)

    def test_asm_has_no_multiplier(self):
        design = make_neuron(8, ALPHA_2)
        parts = [c.name for stage in design.stages for c, _ in stage.parts]
        assert not any(name.startswith("mult8") for name in parts)
        assert any(name.startswith("bshift") for name in parts)

    def test_man_has_no_select_mux(self):
        design = make_neuron(8, ALPHA_1)
        parts = [c.name for stage in design.stages for c, _ in stage.parts]
        assert not any(name.startswith("mux") for name in parts)

    def test_multi_alphabet_has_select_mux(self):
        design = make_neuron(8, ALPHA_4)
        parts = [c.name for stage in design.stages for c, _ in stage.parts]
        assert any(name.startswith("mux4to1") for name in parts)

    def test_report_mentions_stages(self):
        text = make_neuron(12, ALPHA_2).report()
        for stage in ("bank", "multiply", "accumulate", "activate"):
            assert f"[{stage}]" in text


class TestIsoSpeedSizing:
    def test_conventional_misses_timing_and_sizes_up(self):
        cost = make_neuron(8).cost()
        assert cost.critical_path_ps > 1000 / 3.0
        assert cost.max_sizing_factor > 1.0

    def test_asm_designs_meet_timing(self):
        for bits in (8, 12):
            for aset in (ALPHA_4, ALPHA_2, ALPHA_1):
                cost = make_neuron(bits, aset).cost()
                assert cost.max_sizing_factor == 1.0, (bits, str(aset))

    def test_relaxed_clock_removes_penalty(self):
        relaxed = make_neuron(8, clock_ghz=0.5).cost()
        assert relaxed.max_sizing_factor == 1.0

    def test_sizing_grows_area(self):
        fast = make_neuron(8, clock_ghz=3.0).cost()
        slow = make_neuron(8, clock_ghz=0.5).cost()
        assert fast.area_um2 > slow.area_um2

    def test_power_is_energy_times_clock(self):
        cost = make_neuron(8).cost()
        assert cost.power_uw == pytest.approx(
            cost.energy_per_mac_fj * 3.0)


class TestPaperFig8Power:
    """Fig. 8 anchors (normalised power), tolerance +/-0.12."""

    @pytest.mark.parametrize("bits,alphabets,paper", [
        (8, 4, 0.92), (8, 2, 0.74), (8, 1, 0.65),
        (12, 2, 0.79), (12, 1, 0.40),
    ])
    def test_normalized_power(self, costs, bits, alphabets, paper):
        ratio = costs[(bits, alphabets)].normalized_to(
            costs[(bits, "conv")])["power"]
        assert ratio == pytest.approx(paper, abs=0.25)

    def test_man_power_reductions_headline(self, costs):
        """Abstract: '35% and 60% reduction in energy ... for 8 and 12 bits'."""
        r8 = costs[(8, 1)].normalized_to(costs[(8, "conv")])["power"]
        r12 = costs[(12, 1)].normalized_to(costs[(12, "conv")])["power"]
        assert 0.25 <= 1 - r8 <= 0.45
        assert 0.45 <= 1 - r12 <= 0.70

    def test_power_monotone_in_alphabets(self, costs):
        for bits in (8, 12):
            conv = costs[(bits, "conv")]
            p4 = costs[(bits, 4)].normalized_to(conv)["power"]
            p2 = costs[(bits, 2)].normalized_to(conv)["power"]
            p1 = costs[(bits, 1)].normalized_to(conv)["power"]
            assert p1 < p2 < p4 < 1.0


class TestPaperFig10Area:
    """Fig. 10 anchors (normalised area)."""

    @pytest.mark.parametrize("bits,alphabets,paper,tol", [
        (8, 4, 0.95, 0.15), (8, 2, 0.75, 0.15), (8, 1, 0.63, 0.12),
        (12, 1, 0.38, 0.10),
    ])
    def test_normalized_area(self, costs, bits, alphabets, paper, tol):
        ratio = costs[(bits, alphabets)].normalized_to(
            costs[(bits, "conv")])["area"]
        assert ratio == pytest.approx(paper, abs=tol)

    def test_man_area_reductions_headline(self, costs):
        """Abstract: '37% and 62% reduction in area' for 8/12-bit MAN."""
        r8 = costs[(8, 1)].normalized_to(costs[(8, "conv")])["area"]
        r12 = costs[(12, 1)].normalized_to(costs[(12, "conv")])["area"]
        assert 0.25 <= 1 - r8 <= 0.45
        assert 0.52 <= 1 - r12 <= 0.72

    def test_area_monotone_in_alphabets(self, costs):
        for bits in (8, 12):
            conv = costs[(bits, "conv")]
            a4 = costs[(bits, 4)].normalized_to(conv)["area"]
            a2 = costs[(bits, 2)].normalized_to(conv)["area"]
            a1 = costs[(bits, 1)].normalized_to(conv)["area"]
            assert a1 < a2 < a4 <= 1.05

    def test_twelve_bit_savings_exceed_eight_bit(self, costs):
        """The paper's key scaling claim: MAN savings grow with word width."""
        r8 = costs[(8, 1)].normalized_to(costs[(8, "conv")])["area"]
        r12 = costs[(12, 1)].normalized_to(costs[(12, "conv")])["area"]
        assert r12 < r8


class TestFullAlphabetASM:
    def test_exact_asm_still_cheaper_than_sized_conventional(self):
        """Even the 8-alphabet (exact) ASM avoids the array multiplier's
        timing wall at 12 bits."""
        conv = make_neuron(12).cost()
        full = make_neuron(12, FULL_ALPHABETS).cost()
        assert full.area_um2 < conv.area_um2


class TestNeuronConfig:
    def test_custom_config_respected(self):
        config = NeuronConfig(share_units=8)
        design = make_neuron(8, ALPHA_2, config=config)
        assert design.config.share_units == 8

    def test_more_sharing_cheaper_bank(self):
        lone = make_neuron(8, ALPHA_4,
                           config=NeuronConfig(share_units=1)).cost()
        shared = make_neuron(8, ALPHA_4,
                             config=NeuronConfig(share_units=4)).cost()
        assert shared.area_um2 < lone.area_um2

    def test_sharing_does_not_matter_for_man(self):
        lone = make_neuron(8, ALPHA_1,
                           config=NeuronConfig(share_units=1)).cost()
        shared = make_neuron(8, ALPHA_1,
                             config=NeuronConfig(share_units=4)).cost()
        assert lone.area_um2 == pytest.approx(shared.area_um2)
