"""Tests for losses, Sequential, SGD and the Trainer."""

import numpy as np
import pytest

from repro.datasets import lenet, mlp
from repro.nn.losses import CrossEntropyLoss, MSELoss, get_loss
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.nn.optim import SGD, ConstantRate, StepDecay
from repro.nn.trainer import Trainer

RNG = np.random.default_rng(3)


class TestLosses:
    def test_mse_zero_at_target(self):
        loss, grad = MSELoss()(np.ones((2, 3)), np.ones((2, 3)))
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_mse_gradient_direction(self):
        outputs = np.array([[1.0, 0.0]])
        targets = np.array([[0.0, 0.0]])
        _, grad = MSELoss()(outputs, targets)
        assert grad[0, 0] > 0

    def test_mse_finite_difference(self):
        outputs = RNG.normal(size=(4, 3))
        targets = RNG.normal(size=(4, 3))
        loss_fn = MSELoss()
        _, grad = loss_fn(outputs, targets)
        h = 1e-6
        for i in range(outputs.size):
            o = outputs.copy().reshape(-1)
            o[i] += h
            up, _ = loss_fn(o.reshape(outputs.shape), targets)
            o[i] -= 2 * h
            down, _ = loss_fn(o.reshape(outputs.shape), targets)
            assert grad.reshape(-1)[i] == pytest.approx(
                (up - down) / (2 * h), abs=1e-5)

    def test_cross_entropy_finite_difference(self):
        outputs = RNG.normal(size=(3, 4))
        targets = np.eye(4)[[0, 2, 3]]
        loss_fn = CrossEntropyLoss()
        _, grad = loss_fn(outputs, targets)
        h = 1e-6
        for i in range(outputs.size):
            o = outputs.copy().reshape(-1)
            o[i] += h
            up, _ = loss_fn(o.reshape(outputs.shape), targets)
            o[i] -= 2 * h
            down, _ = loss_fn(o.reshape(outputs.shape), targets)
            assert grad.reshape(-1)[i] == pytest.approx(
                (up - down) / (2 * h), abs=1e-5)

    def test_cross_entropy_perfect_prediction(self):
        outputs = np.array([[100.0, -100.0]])
        targets = np.array([[1.0, 0.0]])
        loss, _ = CrossEntropyLoss()(outputs, targets)
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_get_loss(self):
        assert get_loss("mse").name == "mse"
        loss = CrossEntropyLoss()
        assert get_loss(loss) is loss
        with pytest.raises(ValueError):
            get_loss("hinge")


class TestSequential:
    def test_mlp_factory_counts(self):
        net = mlp([1024, 100, 10])
        assert net.num_params == 103510
        assert net.num_neurons == 110

    def test_lenet_factory_counts(self):
        net = lenet()
        assert net.num_params == 51946
        assert net.num_neurons == 8010

    def test_forward_shape(self):
        net = mlp([8, 5, 3], seed=0)
        out = net.forward(RNG.normal(size=(4, 8)))
        assert out.shape == (4, 3)

    def test_predict_returns_class_indices(self):
        net = mlp([8, 5, 3], seed=0)
        pred = net.predict(RNG.normal(size=(6, 8)))
        assert pred.shape == (6,)
        assert set(pred) <= {0, 1, 2}

    def test_accuracy_bounds(self):
        net = mlp([8, 5, 3], seed=0)
        x = RNG.normal(size=(30, 8))
        labels = RNG.integers(0, 3, size=30)
        acc = net.accuracy(x, labels)
        assert 0.0 <= acc <= 1.0

    def test_accuracy_length_mismatch(self):
        net = mlp([8, 5, 3], seed=0)
        with pytest.raises(ValueError):
            net.accuracy(np.zeros((3, 8)), np.zeros(4, dtype=int))

    def test_state_roundtrip(self):
        net = mlp([8, 5, 3], seed=0)
        saved = net.state()
        x = RNG.normal(size=(2, 8))
        before = net.forward(x, training=False)
        net.layers[0].params["W"] += 0.5
        net.load_state(saved)
        np.testing.assert_allclose(net.forward(x, training=False), before)

    def test_save_load_file(self, tmp_path):
        net = mlp([8, 5, 3], seed=0)
        path = str(tmp_path / "weights.npz")
        net.save(path)
        other = mlp([8, 5, 3], seed=99)
        other.load(path)
        x = RNG.normal(size=(2, 8))
        np.testing.assert_allclose(other.forward(x, training=False),
                                   net.forward(x, training=False))

    def test_topology_mlp(self):
        net = mlp([1024, 100, 10])
        topo = net.topology()
        assert [w.neurons for w in topo.layers] == [100, 10]
        assert topo.total_macs == 1024 * 100 + 100 * 10

    def test_topology_lenet(self):
        topo = lenet().topology()
        assert topo.total_neurons == 8010
        assert len(topo.layers) == 6

    def test_topology_conv_needs_spatial(self):
        from repro.nn.layers import Conv2D
        net = Sequential([Conv2D(1, 2, 3)])
        with pytest.raises(ValueError):
            net.topology()

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestSGD:
    def test_updates_move_against_gradient(self):
        layer = Dense(2, 1, activation="identity",
                      rng=np.random.default_rng(0))
        net = Sequential([layer])
        opt = SGD(net, learning_rate=0.1, momentum=0.0)
        layer.grads = {"W": np.ones((2, 1)), "b": np.ones(1)}
        before = layer.params["W"].copy()
        opt.step()
        np.testing.assert_allclose(layer.params["W"], before - 0.1)

    def test_momentum_accumulates(self):
        layer = Dense(1, 1, activation="identity",
                      rng=np.random.default_rng(0))
        net = Sequential([layer])
        opt = SGD(net, learning_rate=0.1, momentum=0.5)
        layer.grads = {"W": np.ones((1, 1)), "b": np.zeros(1)}
        w0 = layer.params["W"].copy()
        opt.step()
        first = w0 - layer.params["W"]
        opt.step()
        second = (w0 - first) - layer.params["W"] - first + first
        # second step = momentum * first + lr * grad > first step
        assert (w0 - layer.params["W"]) > 1.9 * first

    def test_reset_clears_momentum(self):
        layer = Dense(1, 1, activation="identity",
                      rng=np.random.default_rng(0))
        opt = SGD(Sequential([layer]), learning_rate=0.1, momentum=0.9)
        layer.grads = {"W": np.ones((1, 1)), "b": np.zeros(1)}
        opt.step()
        opt.reset()
        assert opt.epoch == 0
        assert not opt._velocity

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD(mlp([2, 2]), momentum=1.0)

    def test_schedules(self):
        assert ConstantRate(0.1)(5) == 0.1
        decay = StepDecay(0.4, factor=0.5, every=10)
        assert decay(0) == 0.4
        assert decay(10) == 0.2
        assert decay(25) == 0.1
        with pytest.raises(ValueError):
            ConstantRate(0.0)
        with pytest.raises(ValueError):
            StepDecay(0.1, factor=0.0)


def _toy_problem(n=200, seed=0):
    """Linearly separable 2-class blobs."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=-1.0, scale=0.4, size=(n // 2, 4))
    x1 = rng.normal(loc=+1.0, scale=0.4, size=(n // 2, 4))
    x = np.vstack([x0, x1])
    labels = np.array([0] * (n // 2) + [1] * (n // 2))
    onehot = np.eye(2)[labels]
    return x, onehot, labels


class TestTrainer:
    def test_learns_separable_problem(self):
        x, onehot, labels = _toy_problem()
        net = mlp([4, 8, 2], seed=1)
        trainer = Trainer(net, SGD(net, 0.2), batch_size=16)
        history = trainer.fit(x, onehot, x, labels, max_epochs=30)
        assert history.best_accuracy > 0.95

    def test_saturation_stops_early(self):
        x, onehot, labels = _toy_problem()
        net = mlp([4, 8, 2], seed=1)
        trainer = Trainer(net, SGD(net, 0.2), batch_size=16, patience=2)
        history = trainer.fit(x, onehot, x, labels, max_epochs=100)
        assert history.epochs_run < 100

    def test_keeps_best_state(self):
        x, onehot, labels = _toy_problem()
        net = mlp([4, 8, 2], seed=1)
        trainer = Trainer(net, SGD(net, 0.2), batch_size=16, patience=2)
        history = trainer.fit(x, onehot, x, labels, max_epochs=20)
        assert net.accuracy(x, labels) == pytest.approx(
            history.best_accuracy, abs=1e-9)

    def test_post_step_hook_called(self):
        x, onehot, labels = _toy_problem(n=40)
        net = mlp([4, 4, 2], seed=1)
        calls = []
        trainer = Trainer(net, SGD(net, 0.1), batch_size=10,
                          post_step=lambda: calls.append(1))
        trainer.fit(x, onehot, x, labels, max_epochs=1)
        assert len(calls) == 4  # 40 samples / batch 10

    def test_mse_loss_training(self):
        x, onehot, labels = _toy_problem()
        net = mlp([4, 8, 2], hidden_activation="sigmoid", seed=1)
        # sigmoid output for MSE-style training
        net.layers[-1].activation = __import__(
            "repro.nn.activations", fromlist=["Sigmoid"]).Sigmoid()
        trainer = Trainer(net, SGD(net, 0.5), loss="mse", batch_size=16)
        history = trainer.fit(x, onehot, x, labels, max_epochs=40)
        assert history.best_accuracy > 0.9

    def test_validation_argument_checks(self):
        net = mlp([4, 4, 2], seed=1)
        trainer = Trainer(net, SGD(net, 0.1))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((3, 4)), np.zeros((4, 2)),
                        np.zeros((2, 4)), np.zeros(2, dtype=int))

    def test_invalid_parameters(self):
        net = mlp([4, 4, 2], seed=1)
        with pytest.raises(ValueError):
            Trainer(net, SGD(net, 0.1), batch_size=0)
        with pytest.raises(ValueError):
            Trainer(net, SGD(net, 0.1), patience=0)
