"""Tests for quartet-usage analysis and layer sensitivity."""

import numpy as np
import pytest

from repro.analysis.quartets import (
    QuartetUsage,
    quartet_usage,
    select_alphabets,
    weighted_coverage,
)
from repro.analysis.sensitivity import layer_sensitivity
from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, FULL_ALPHABETS
from repro.datasets import mlp, synthetic_mnist

RNG = np.random.default_rng(23)


class TestQuartetUsage:
    def test_counts_sum(self):
        weights = RNG.normal(scale=0.3, size=200)
        usage = quartet_usage(weights, 8)
        # 8-bit weights have 2 quartets each
        assert sum(usage.counts) == 400
        assert usage.num_weights == 200
        assert usage.num_quartets == 2

    def test_12bit_three_quartets(self):
        usage = quartet_usage(RNG.normal(size=50), 12)
        assert sum(usage.counts) == 150

    def test_zero_weights_all_zero_quartets(self):
        usage = quartet_usage(np.zeros(10), 8)
        assert usage.counts[0] == 20
        assert sum(usage.counts[1:]) == 0

    def test_frequencies_sum_to_one(self):
        usage = quartet_usage(RNG.normal(size=100), 8)
        assert usage.frequencies.sum() == pytest.approx(1.0)

    def test_supported_fraction_full_set(self):
        usage = quartet_usage(RNG.normal(size=100), 8)
        assert usage.supported_fraction(FULL_ALPHABETS) == 1.0

    def test_supported_fraction_ordering(self):
        usage = quartet_usage(RNG.normal(size=500), 8)
        f1 = usage.supported_fraction(ALPHA_1)
        f2 = usage.supported_fraction(ALPHA_2)
        f4 = usage.supported_fraction(ALPHA_4)
        assert f1 <= f2 <= f4 <= 1.0

    def test_weighted_coverage_alias(self):
        usage = quartet_usage(RNG.normal(size=100), 8)
        assert weighted_coverage(usage, ALPHA_2) == \
            usage.supported_fraction(ALPHA_2)


class TestSelectAlphabets:
    def test_full_selection_covers_everything(self):
        usage = quartet_usage(RNG.normal(size=300), 8)
        chosen = select_alphabets(usage, 8)
        assert weighted_coverage(usage, chosen) == 1.0

    def test_k1_on_power_of_two_weights(self):
        # weights whose quartets are all powers of two -> {1} is optimal
        weights = np.array([1, 2, 4, 8, 16, 32, 64]) / 128.0
        usage = quartet_usage(weights, 8)
        chosen = select_alphabets(usage, 1)
        assert chosen.alphabets == (1,)
        assert weighted_coverage(usage, chosen) == 1.0

    def test_biased_distribution_picks_dominant_alphabet(self):
        counts = [0] * 16
        counts[0] = 5
        counts[5] = 50      # heavy use of quartet value 5
        counts[10] = 30     # 10 = 5 << 1, same alphabet
        usage = QuartetUsage(counts=tuple(counts), num_weights=40,
                             num_quartets=2)
        chosen = select_alphabets(usage, 1)
        assert chosen.alphabets == (5,)

    def test_selection_at_least_as_good_as_paper_ladder(self):
        """For any weight distribution the data-driven set covers at least
        as much as the paper's same-size default."""
        for scale in (0.05, 0.3, 1.0):
            usage = quartet_usage(RNG.normal(scale=scale, size=400), 8)
            for k, default in ((1, ALPHA_1), (2, ALPHA_2), (4, ALPHA_4)):
                chosen = select_alphabets(usage, k)
                assert weighted_coverage(usage, chosen) >= \
                    weighted_coverage(usage, default) - 1e-12

    def test_invalid_k(self):
        usage = quartet_usage(RNG.normal(size=10), 8)
        with pytest.raises(ValueError):
            select_alphabets(usage, 0)
        with pytest.raises(ValueError):
            select_alphabets(usage, 9)


class TestLayerSensitivity:
    @pytest.fixture(scope="class")
    def trained(self):
        from repro.nn import SGD, Trainer
        data = synthetic_mnist(n_train=400, n_test=200, seed=0)
        model = mlp([1024, 32, 10], seed=4)
        trainer = Trainer(model, SGD(model, 0.3), batch_size=32, patience=2)
        trainer.fit(data.flat_train, data.y_train_onehot, data.flat_test,
                    data.y_test, max_epochs=8)
        return model, data

    def test_one_entry_per_layer(self, trained):
        model, data = trained
        results = layer_sensitivity(model, data.flat_test, data.y_test,
                                    bits=8, alphabet_set=ALPHA_1)
        assert len(results) == 2
        assert results[0].layer_name == "fc1"
        assert results[1].layer_name == "fc2"

    def test_drops_are_bounded(self, trained):
        model, data = trained
        results = layer_sensitivity(model, data.flat_test, data.y_test,
                                    bits=8, alphabet_set=ALPHA_1)
        for entry in results:
            assert -0.2 <= entry.drop <= 1.0

    def test_fallback_mode_runs(self, trained):
        model, data = trained
        results = layer_sensitivity(model, data.flat_test, data.y_test,
                                    bits=8, alphabet_set=ALPHA_2,
                                    constrain=False)
        assert len(results) == 2

    def test_exact_set_produces_zero_drop(self, trained):
        """Approximating with the full set changes nothing."""
        model, data = trained
        results = layer_sensitivity(model, data.flat_test, data.y_test,
                                    bits=8, alphabet_set=FULL_ALPHABETS)
        for entry in results:
            assert entry.drop == pytest.approx(0.0, abs=1e-9)
