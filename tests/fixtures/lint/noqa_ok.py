"""Suppression fixture: a real violation silenced by a scoped noqa."""

import numpy as np


def probe():
    return np.random.default_rng()  # repro: noqa[RPR001]
