"""RPR001 fixture: every class of determinism violation."""

import random
import time

import numpy as np


def jitter(values):
    rng = np.random.default_rng()      # unseeded constructor
    np.random.seed(1)                  # numpy legacy global state
    noise = random.random()            # stdlib global state
    stamp = time.time()                # wall-clock call
    return values + rng.normal() + noise + stamp


def stamped_factory():
    return {"default_factory": time.time}   # wall-clock reference
