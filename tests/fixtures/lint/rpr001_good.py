"""RPR001 fixture: seeded randomness and interval clocks only."""

import time

import numpy as np


def jitter(values, seed=0):
    rng = np.random.default_rng(seed)
    local = np.random.default_rng(seed + 1)
    started = time.perf_counter()
    out = values + rng.normal() + local.normal()
    return out, time.perf_counter() - started
