"""RPR005 fixture: impure state baked into journal records."""

import os
import time


def make_record(config_digest, accuracy):
    return {
        "config": config_digest,
        "accuracy": accuracy,
        "timestamp": time.time(),     # wall clock in the record
        "worker_pid": os.getpid(),    # process identity in the record
    }
