"""RPR002 fixture: every field is hashed, aliased or documented.

``backend`` / ``sim_backend`` / ``train_backend`` /
``eval_batch_size`` / ``cache_dir`` / ``stages`` sit on the default
``stage_key_exclusions`` allowlist;
``digest()`` only drops the documented ``cache_dir``; ``bits`` is read
through the ``word_bits`` accessor alias.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineConfig:
    app: str
    bits: int = 8
    seed: int = 0
    backend: str = "auto"
    sim_backend: str = "auto"
    train_backend: str = "auto"
    eval_batch_size: int = 256
    cache_dir: str = "cache"
    stages: tuple = ()

    def word_bits(self):
        return self.bits

    def to_dict(self):
        return {
            "app": self.app,
            "bits": self.bits,
            "seed": self.seed,
            "backend": self.backend,
            "sim_backend": self.sim_backend,
            "train_backend": self.train_backend,
            "eval_batch_size": self.eval_batch_size,
            "cache_dir": self.cache_dir,
            "stages": list(self.stages),
        }

    def digest(self):
        data = self.to_dict()
        data.pop("cache_dir")
        return repr(sorted(data.items()))


class Pipeline:
    def __init__(self, config):
        self.config = config

    def _stage_deps(self, stage, plan):
        cfg = self.config
        return {"app": cfg.app, "bits": cfg.word_bits(),
                "seed": cfg.seed}
