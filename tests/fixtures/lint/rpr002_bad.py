"""RPR002 fixture: a config whose cache keys silently lose a field.

``mystery`` is missing from ``to_dict()`` *and* from ``_stage_deps``;
``digest()`` drops ``bits`` without documenting the exclusion.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineConfig:
    app: str
    bits: int = 8
    mystery: int = 0

    def to_dict(self):
        return {"app": self.app, "bits": self.bits}

    def digest(self):
        data = self.to_dict()
        data.pop("bits")
        return repr(sorted(data.items()))


class Pipeline:
    def __init__(self, config):
        self.config = config

    def _stage_deps(self, stage, plan):
        cfg = self.config
        return {"app": cfg.app, "bits": cfg.bits}
