"""Suppression fixture: malformed noqa markers (both are RPR000)."""

import numpy as np


def probe():
    return np.random.default_rng()  # repro: noqa


def probe2():
    return np.random.default_rng()  # repro: noqa[RPR999]
