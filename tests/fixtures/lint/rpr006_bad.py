"""RPR006 fixture: dynamic names, bad names, split label schemas."""


def record(reg, obs, name, stage):
    reg.counter(name, stage=stage).inc()             # computed name
    reg.counter("bad metric!", stage=stage).inc()    # unsanitizable name
    reg.counter("fixture.calls", stage=stage).inc()
    reg.counter("fixture.calls", design="asm2").inc()  # split schema
    with obs.span(stage):                            # computed span name
        pass
    with obs.span(f"{stage}.run"):                   # no literal prefix
        pass
