"""RPR004 fixture: floats only at the allowlisted carrier assignments."""

import numpy as np


def dense_forward(acc, res_x, res_w, bias):
    scale = np.float64(res_x) * res_w / 1.0   # carrier: reviewed transition
    real = acc.astype(np.float64) * scale + bias
    halves = acc // 2                          # floor division stays legal
    return real, halves
