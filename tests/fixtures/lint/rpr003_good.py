"""RPR003 fixture: both backends complete, methods covered by tests.

``dense`` and ``train_forward`` are referenced throughout the real
``tests/`` tree (``test_kernels.py``, ``test_train_backends.py``), so
the test-coverage check passes too.
"""


class KernelBackend:
    name = "base"

    def dense(self, layer, x, x_fmt):
        raise NotImplementedError

    def train_forward(self, network, x, training=True):
        raise NotImplementedError


class ReferenceBackend(KernelBackend):
    name = "reference"

    def dense(self, layer, x, x_fmt):
        return layer, x_fmt

    def train_forward(self, network, x, training=True):
        return network, x


class FastBackend(KernelBackend):
    name = "fast"

    def dense(self, layer, x, x_fmt):
        return layer, x_fmt

    def train_forward(self, network, x, training=True):
        return network, x
