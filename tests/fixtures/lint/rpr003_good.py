"""RPR003 fixture: both backends complete, method covered by tests.

``dense`` is referenced throughout the real ``tests/`` tree, so the
test-coverage check passes too.
"""


class KernelBackend:
    name = "base"

    def dense(self, layer, x, x_fmt):
        raise NotImplementedError


class ReferenceBackend(KernelBackend):
    name = "reference"

    def dense(self, layer, x, x_fmt):
        return layer, x_fmt


class FastBackend(KernelBackend):
    name = "fast"

    def dense(self, layer, x, x_fmt):
        return layer, x_fmt
