"""RPR006 fixture: literal names, one label schema per metric."""


def record(reg, obs, stage, backend):
    reg.counter("fixture.calls", stage=stage).inc()
    reg.counter("fixture.calls", stage=stage).inc()
    reg.gauge("fixture.depth").set(2)
    reg.histogram("fixture.latency_seconds", window=256).observe(0.1)
    with obs.span("fixture.run"):
        pass
    with obs.span(f"stage.{stage}"):    # literal dotted prefix: fine
        pass
