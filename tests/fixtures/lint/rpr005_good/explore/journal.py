"""RPR005 fixture: pure records, telemetry out-of-band."""

import time


def run_one(evaluate, config_digest):
    started = time.perf_counter()
    record = {"config": config_digest, "accuracy": evaluate(config_digest)}
    # the {record, elapsed_s} wrapper: telemetry rides next to the pure
    # record and is stripped before journaling
    return {"record": record,
            "elapsed_s": time.perf_counter() - started}
