"""RPR004 fixture: float arithmetic leaking into the integer path."""

import numpy as np


def dense_forward(acc, bias):
    out = acc / 3                     # true division
    out = out.astype(np.float32)      # float dtype outside a carrier
    return float(out[0]) + bias       # float() construction
