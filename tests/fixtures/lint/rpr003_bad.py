"""RPR003 fixture: an abstract kernel left half-implemented.

``frobnicate_zz9`` is implemented by the reference backend only and is
referenced by no test (the fixtures directory is excluded from the test
identifier scan), so the rule reports both gaps.  ``sgd_update_zz9``
mirrors the training-kernel family shape — an update kernel added to
the interface but wired into just one backend.
"""


class KernelBackend:
    name = "base"

    def dense(self, layer, x, x_fmt):
        raise NotImplementedError

    def frobnicate_zz9(self, layer):
        """A kernel family nobody finished wiring up."""
        raise NotImplementedError

    def sgd_update_zz9(self, network, velocity, rate, momentum):
        """A training update kernel missing its fast half."""
        raise NotImplementedError


class ReferenceBackend(KernelBackend):
    name = "reference"

    def dense(self, layer, x, x_fmt):
        return layer, x_fmt

    def frobnicate_zz9(self, layer):
        return layer

    def sgd_update_zz9(self, network, velocity, rate, momentum):
        return network


class FastBackend(KernelBackend):
    name = "fast"

    def dense(self, layer, x, x_fmt):
        return layer, x_fmt
