"""Tests for repro.obs: quantiles, metrics registry, Prometheus export,
tracing spans (nesting / exception safety / thread safety), the global
enable/disable switch, trace-file parsing and an end-to-end traced
pipeline run."""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.obs import stats as obs_stats
from repro.pipeline import Budget, Pipeline, PipelineConfig

TINY_BUDGET = Budget("tiny", n_train=250, n_test=120, max_epochs=3,
                     retrain_epochs=2)


@pytest.fixture(autouse=True)
def obs_isolation():
    """Every test starts and ends with obs disabled and empty."""
    obs.reset()
    yield
    obs.reset()


# ----------------------------------------------------------------------
# quantile
# ----------------------------------------------------------------------
class TestQuantile:
    def test_empty_returns_zero(self):
        assert obs.quantile([], 0.5) == 0.0
        assert obs.quantile([], 0.99) == 0.0

    def test_single_sample_every_q(self):
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert obs.quantile([7.5], q) == 7.5

    def test_ties(self):
        assert obs.quantile([3.0, 3.0, 3.0, 3.0], 0.5) == 3.0
        assert obs.quantile([1.0, 3.0, 3.0, 3.0], 0.25) == pytest.approx(2.5)

    def test_interpolates_between_order_statistics(self):
        # p50 of [1..10] is 5.5, not 5 or 6 (the old nearest-rank bias)
        values = list(range(1, 11))
        assert obs.quantile(values, 0.5) == pytest.approx(5.5)
        assert obs.quantile(values, 0.95) == pytest.approx(9.55)

    def test_matches_numpy_linear_method(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(-5.0, 5.0, size=37).tolist()
        for q in (0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert obs.quantile(values, q) == pytest.approx(
                float(np.quantile(values, q)))

    def test_unsorted_input(self):
        assert obs.quantile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            obs.quantile([1.0], 1.5)
        with pytest.raises(ValueError):
            obs.quantile([1.0], -0.1)


# ----------------------------------------------------------------------
# metrics primitives and the registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotonic(self):
        counter = obs.Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_up_and_down(self):
        gauge = obs.Gauge()
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8.0

    def test_histogram_summary(self):
        histogram = obs.Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["mean"] == 2.5
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == pytest.approx(2.5)

    def test_histogram_empty_summary(self):
        summary = obs.Histogram().summary()
        assert summary == {"count": 0, "sum": 0.0, "mean": 0.0,
                           "min": 0.0, "max": 0.0, "p50": 0.0,
                           "p95": 0.0, "p99": 0.0}

    def test_histogram_window_bounds_memory_keeps_exact_totals(self):
        histogram = obs.Histogram(window=4)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100          # exact forever
        assert histogram.sum == float(sum(range(100)))
        assert histogram.min == 0.0
        assert histogram.max == 99.0
        # quantiles only see the last 4 observations (96..99)
        assert histogram.quantile(0.0) == 96.0

    def test_registry_memoizes_by_name_and_labels(self):
        registry = obs.MetricsRegistry()
        a = registry.counter("x.calls", backend="fast")
        b = registry.counter("x.calls", backend="fast")
        c = registry.counter("x.calls", backend="reference")
        assert a is b
        assert a is not c

    def test_registry_rejects_kind_conflict(self):
        registry = obs.MetricsRegistry()
        registry.counter("y.calls")
        with pytest.raises(ValueError):
            registry.gauge("y.calls")

    def test_to_dict_rows(self):
        registry = obs.MetricsRegistry()
        registry.counter("a.hits", stage="train").inc(2)
        registry.gauge("b.depth").set(5)
        registry.histogram("c.seconds").observe(1.5)
        rows = {row["name"]: row for row in registry.to_dict()}
        assert rows["a.hits"]["value"] == 2.0
        assert rows["a.hits"]["labels"] == {"stage": "train"}
        assert rows["b.depth"]["kind"] == "gauge"
        assert rows["c.seconds"]["count"] == 1

    def test_thread_safety_under_concurrent_recording(self):
        registry = obs.MetricsRegistry()

        def hammer() -> None:
            for i in range(1000):
                registry.counter("t.calls").inc()
                registry.histogram("t.seconds").observe(float(i))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("t.calls").value == 8000.0
        assert registry.histogram("t.seconds").count == 8000


class TestPrometheus:
    def test_name_sanitisation(self):
        assert obs.prometheus_name("kernels.calls") == "kernels_calls"
        assert obs.prometheus_name("9lives") == "_9lives"

    def test_label_value_escaping(self):
        assert obs.escape_label_value('a"b') == 'a\\"b'
        assert obs.escape_label_value("a\\b") == "a\\\\b"
        assert obs.escape_label_value("a\nb") == "a\\nb"

    def test_text_format(self):
        registry = obs.MetricsRegistry()
        registry.counter("esc.calls", backend='we"ird\n').inc(3)
        registry.gauge("queue.depth").set(2)
        registry.histogram("lat.seconds").observe(0.5)
        text = registry.to_prometheus()
        assert text.endswith("\n")
        assert "# TYPE esc_calls counter" in text
        assert 'esc_calls{backend="we\\"ird\\n"} 3' in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 2" in text
        assert "# TYPE lat_seconds summary" in text
        assert 'lat_seconds{quantile="0.5"} 0.5' in text
        assert "lat_seconds_count 1" in text
        assert "lat_seconds_sum 0.5" in text

    def test_empty_registry_renders_empty(self):
        assert obs.MetricsRegistry().to_prometheus() == ""

    def test_help_lines_for_documented_vocabulary(self):
        registry = obs.MetricsRegistry()
        registry.counter("kernels.calls", backend="fast",
                         kernel="dense").inc()
        text = registry.to_prometheus()
        assert "# HELP kernels_calls " \
               "Kernel dispatches per backend and kernel\n" \
               "# TYPE kernels_calls counter" in text

    def test_help_precedes_type_and_escapes(self):
        registry = obs.MetricsRegistry()
        registry.describe("local.metric", "line one\nline two \\ done")
        registry.gauge("local.metric").set(1)
        text = registry.to_prometheus()
        assert "# HELP local_metric line one\\nline two \\\\ done\n" \
               "# TYPE local_metric gauge" in text

    def test_undocumented_metric_has_no_help_line(self):
        registry = obs.MetricsRegistry()
        registry.counter("adhoc.thing").inc()
        text = registry.to_prometheus()
        assert "# HELP" not in text
        assert "# TYPE adhoc_thing counter" in text


# ----------------------------------------------------------------------
# spans and the global switch
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.enabled()
        span = obs.span("anything", k=1)
        assert span is obs.span("something.else")
        with span as inner:
            inner.set(ignored=True)
        assert obs.spans() == []

    def test_nesting_builds_tree(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("child.a"):
                with obs.span("grand"):
                    pass
            with obs.span("child.b"):
                pass
        roots = obs.spans()
        assert [root.name for root in roots] == ["outer"]
        assert [child.name for child in roots[0].children] == \
            ["child.a", "child.b"]
        assert roots[0].children[0].children[0].name == "grand"
        assert roots[0].wall_ms >= roots[0].children[0].wall_ms

    def test_exception_recorded_and_reraised(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                with obs.span("boom"):
                    raise RuntimeError("x")
        outer = obs.spans()[0]
        assert outer.error == "RuntimeError"
        assert outer.children[0].error == "RuntimeError"
        # the stack unwound: a new span is a root again
        with obs.span("after"):
            pass
        assert [root.name for root in obs.spans()] == ["outer", "after"]

    def test_set_attaches_attrs(self):
        obs.enable()
        with obs.span("s", a=1) as span:
            span.set(b=2)
        assert obs.spans()[0].attrs == {"a": 1, "b": 2}

    def test_threads_get_independent_stacks(self):
        obs.enable()
        ready = threading.Barrier(2)

        def work(tag: str) -> None:
            ready.wait(timeout=5.0)
            with obs.span(f"root.{tag}"):
                with obs.span(f"leaf.{tag}"):
                    pass

        threads = [threading.Thread(target=work, args=(tag,))
                   for tag in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        roots = {root.name: root for root in obs.spans()}
        # each thread's leaf nested under its own root, never the other's
        assert set(roots) == {"root.a", "root.b"}
        for tag in ("a", "b"):
            assert [c.name for c in roots[f"root.{tag}"].children] == \
                [f"leaf.{tag}"]

    def test_record_kernel_counters(self):
        obs.record_kernel("fast", "dense", 0.25, calls=3)
        registry = obs.registry()
        assert registry.counter("kernels.calls", backend="fast",
                                kernel="dense").value == 3.0
        assert registry.counter("kernels.seconds", backend="fast",
                                kernel="dense").value == 0.25

    def test_reset_clears_everything(self):
        obs.enable()
        with obs.span("s"):
            pass
        obs.registry().counter("c").inc()
        obs.reset()
        assert not obs.enabled()
        assert obs.spans() == []
        assert obs.registry().to_dict() == []


# ----------------------------------------------------------------------
# trace files
# ----------------------------------------------------------------------
class TestTraceFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.enable(path)
        with obs.span("outer", app="x"):
            with obs.span("inner"):
                pass
        obs.registry().counter("pipeline.cache.hits", stage="train").inc()
        obs.disable()

        trace = obs_stats.load_trace(path)
        assert trace.meta["format"] == obs.TRACE_FORMAT
        assert trace.span_names() == {"outer", "inner"}
        assert [root.name for root in trace.roots] == ["outer"]
        assert [child.name for child in trace.roots[0].children] == \
            ["inner"]
        assert trace.metrics[0]["name"] == "pipeline.cache.hits"

        rendered = obs_stats.format_span_tree(trace)
        assert "outer" in rendered and "  inner" in rendered
        table = obs_stats.format_metric_table(trace)
        assert "pipeline.cache.hits" in table

    def test_chrome_conversion(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.enable(path)
        with obs.span("s", design="asm2"):
            pass
        obs.disable()
        out = str(tmp_path / "chrome.json")
        obs_stats.write_chrome_trace(obs_stats.load_trace(path), out)
        with open(out) as handle:
            chrome = json.load(handle)
        event = chrome["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["name"] == "s"
        assert event["args"]["design"] == "asm2"
        assert "cpu_ms" in event["args"]

    def test_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\n')
        with pytest.raises(obs_stats.TraceError):
            obs_stats.load_trace(str(path))

    def test_rejects_bad_span_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "format": obs.TRACE_FORMAT})
            + "\n" + json.dumps({"type": "span", "name": "s"}) + "\n")
        with pytest.raises(obs_stats.TraceError, match="missing"):
            obs_stats.load_trace(str(path))

    def test_rejects_unknown_line_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "format": obs.TRACE_FORMAT})
            + "\n" + json.dumps({"type": "surprise"}) + "\n")
        with pytest.raises(obs_stats.TraceError, match="unknown"):
            obs_stats.load_trace(str(path))


# ----------------------------------------------------------------------
# end to end: a traced pipeline run
# ----------------------------------------------------------------------
class TestTracedPipeline:
    def test_traced_run_covers_stages_and_cache_counters(self, tmp_path):
        config = PipelineConfig(
            app="face", designs=("asm1",),
            stages=("train", "quantize", "evaluate"),
            budget=TINY_BUDGET, seed=0,
            cache_dir=str(tmp_path / "cache"))
        path = str(tmp_path / "trace.jsonl")

        obs.enable(path)
        Pipeline(config).run()
        obs.disable()
        trace = obs_stats.load_trace(path)
        names = trace.span_names()
        assert {"pipeline.run", "stage.train", "stage.quantize",
                "stage.evaluate", "train.epoch"} <= names
        metric_names = {row["name"] for row in trace.metrics}
        assert "pipeline.cache.misses" in metric_names
        assert "kernels.calls" in metric_names

        # warm re-run: every stage served from cache, hits counted
        obs.reset()
        warm = str(tmp_path / "warm.jsonl")
        obs.enable(warm)
        Pipeline(config).run(resume=True)
        obs.disable()
        warm_trace = obs_stats.load_trace(warm)
        stage_events = [event for event in warm_trace.events
                        if event["name"].startswith("stage.")]
        assert stage_events
        assert all(event["args"]["cached"] for event in stage_events)
        # one hit per stage the cold run executed (the plan may insert
        # dependency stages beyond the three we asked for)
        executed = {event["name"].removeprefix("stage.")
                    for event in trace.events
                    if event["name"].startswith("stage.")}
        hits = {row["labels"]["stage"]: row["value"]
                for row in warm_trace.metrics
                if row["name"] == "pipeline.cache.hits"}
        assert hits == {stage: 1.0 for stage in executed}

    def test_disabled_run_records_nothing(self, tmp_path):
        config = PipelineConfig(
            app="face", designs=("asm1",),
            stages=("train", "quantize", "evaluate"),
            budget=TINY_BUDGET, seed=0,
            cache_dir=str(tmp_path / "cache"))
        Pipeline(config).run()
        assert not obs.enabled()
        assert obs.spans() == []
        assert obs.registry().to_dict() == []


# ----------------------------------------------------------------------
# the in-memory span cap must never be silent
# ----------------------------------------------------------------------
class TestDroppedSpans:
    def test_dropped_spans_counted_and_stamped(self, tmp_path,
                                               monkeypatch):
        import repro.obs.tracing as tracing
        from repro.obs.stats import load_trace

        monkeypatch.setattr(tracing, "MAX_KEPT_SPANS", 3)
        trace = str(tmp_path / "t.jsonl")
        obs.enable(trace_path=trace)
        for _ in range(5):
            with obs.span("tick"):
                pass
        obs.disable()
        assert obs.registry().counter("obs.spans_dropped").value == 2.0
        loaded = load_trace(trace)
        assert loaded.dropped == 2
        # the JSONL file itself keeps every span regardless of the cap
        assert len(loaded.events) == 5

    def test_no_drop_no_counter_no_stamp(self, tmp_path):
        from repro.obs.stats import load_trace

        trace = str(tmp_path / "t.jsonl")
        obs.enable(trace_path=trace)
        with obs.span("one"):
            pass
        obs.disable()
        rows = {row["name"] for row in obs.registry().to_dict()}
        assert "obs.spans_dropped" not in rows
        assert load_trace(trace).dropped == 0
