"""Tests for the technology model."""

import pytest

from repro.hardware.technology import (
    GATE_KINDS,
    IBM45,
    GateSpec,
    TechnologyModel,
    scaled_technology,
)


class TestGateSpec:
    def test_fields(self):
        spec = GateSpec(1.0, 2.0, 3.0)
        assert (spec.area_um2, spec.energy_fj, spec.delay_ps) == (1.0, 2.0, 3.0)

    def test_scaled(self):
        spec = GateSpec(1.0, 2.0, 3.0).scaled(area=2, energy=0.5, delay=3)
        assert spec.area_um2 == 2.0
        assert spec.energy_fj == 1.0
        assert spec.delay_ps == 9.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GateSpec(1, 1, 1).area_um2 = 5


class TestIBM45:
    def test_all_kinds_present(self):
        for kind in GATE_KINDS:
            assert IBM45.spec(kind) is not None

    def test_feature_size(self):
        assert IBM45.feature_nm == 45

    def test_fa_bigger_than_nand(self):
        assert IBM45.area("FA") > IBM45.area("NAND2")
        assert IBM45.energy("FA") > IBM45.energy("NAND2")

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            IBM45.spec("QUANTUM_GATE")

    def test_accessors_match_spec(self):
        spec = IBM45.spec("MUX2")
        assert IBM45.area("MUX2") == spec.area_um2
        assert IBM45.energy("MUX2") == spec.energy_fj
        assert IBM45.delay("MUX2") == spec.delay_ps

    def test_gates_mapping_readonly(self):
        with pytest.raises(TypeError):
            IBM45.gates["NAND2"] = GateSpec(0, 0, 0)


class TestTechnologyValidation:
    def test_missing_gate_rejected(self):
        with pytest.raises(ValueError):
            TechnologyModel("broken", 45, {"NAND2": GateSpec(1, 1, 1)})


class TestScaledTechnology:
    def test_voltage_scaling_quadratic_energy(self):
        low = scaled_technology(IBM45, "lowv", vdd_ratio=0.8, delay_ratio=1.3)
        for kind in GATE_KINDS:
            base = IBM45.spec(kind)
            scaled = low.spec(kind)
            assert scaled.energy_fj == pytest.approx(base.energy_fj * 0.64)
            assert scaled.delay_ps == pytest.approx(base.delay_ps * 1.3)
            assert scaled.area_um2 == base.area_um2

    def test_name_and_vdd(self):
        low = scaled_technology(IBM45, "lowv", vdd_ratio=0.9)
        assert low.name == "lowv"
        assert low.vdd == pytest.approx(0.9)
