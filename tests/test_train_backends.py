"""Bit-identity of the fast training kernels (forward/backward/update).

The fast backend of :mod:`repro.kernels.training` compiles a per-network
training plan (cached im2col gathers, fused activation derivatives,
preallocated gradient buffers, in-place momentum SGD) and claims
bit-identical results to the reference per-layer loops.  This suite
enforces the claim end to end: seeded ``Trainer.fit`` runs must produce
byte-equal :class:`TrainHistory` and final network state across MLPs,
LeNet-style conv stacks (with and without connection tables), ragged
final batches and projected-SGD retraining (``post_step``) — plus
direct kernel-call parity, the train-backend plumbing, stage-cache
neutrality and the epoch telemetry counters.
"""

import numpy as np
import pytest

from repro import obs
from repro.asm.alphabet import ALPHA_2
from repro.kernels import get_backend
from repro.nn.layers import Conv2D, Dense, Flatten, ScaledAvgPool2D
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer
from repro.training.constrained import (
    ConstraintProjector,
    constrained_trainer,
)


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.reset()
    yield
    obs.reset()


# ----------------------------------------------------------------------
# network builders (seeded twins for reference / fast runs)
# ----------------------------------------------------------------------
def build_mlp(seed=3, hidden_act="sigmoid"):
    rng = np.random.default_rng(seed)
    return Sequential([
        Dense(20, 16, activation=hidden_act, rng=rng),
        Dense(16, 10, activation="identity", rng=rng),
    ])


def build_conv(seed=3, table=False):
    rng = np.random.default_rng(seed)
    ct = None
    if table:
        ct = np.zeros((4, 2), dtype=bool)
        ct[0, 0] = ct[1, 1] = ct[2, :] = ct[3, 0] = True
    return Sequential([
        Conv2D(2, 4, 3, activation="tanh", connection_table=ct, rng=rng),
        ScaledAvgPool2D(4, 2, activation="tanh"),
        Conv2D(4, 6, 3, activation="tanh", rng=rng),
        Flatten(),
        Dense(6 * 16, 10, activation="identity", rng=rng),
    ], input_spatial=(14, 14))


def state_bytes(network):
    return b"".join(param.tobytes() for layer in network.state()
                    for param in layer.values())


def fit_once(build, backend, shape=(20,), n=37, batch=8, epochs=2,
             post_step_bits=None):
    """One seeded ``fit`` run; n=37 with batch=8 leaves a ragged tail."""
    network = build()
    network.set_train_backend(backend)
    rng = np.random.default_rng(7)
    x = rng.normal(size=(n, *shape))
    y = np.eye(10)[rng.integers(0, 10, size=n)]
    x_val = rng.normal(size=(11, *shape))
    y_val = rng.integers(0, 10, size=11)
    optimizer = SGD(network, learning_rate=0.05, momentum=0.9)
    if post_step_bits is not None:
        projector = ConstraintProjector(network, post_step_bits, ALPHA_2)
        trainer = constrained_trainer(network, optimizer, projector,
                                      batch_size=batch,
                                      rng=np.random.default_rng(5))
    else:
        trainer = Trainer(network, optimizer, batch_size=batch,
                          rng=np.random.default_rng(5))
    history = trainer.fit(x, y, x_val, y_val, max_epochs=epochs)
    return history, state_bytes(network)


def assert_identical_runs(build, shape=(20,), **kwargs):
    ref_hist, ref_state = fit_once(build, "reference", shape=shape,
                                   **kwargs)
    fast_hist, fast_state = fit_once(build, "fast", shape=shape, **kwargs)
    assert ref_hist.losses == fast_hist.losses
    assert ref_hist.accuracies == fast_hist.accuracies
    assert ref_state == fast_state


# ----------------------------------------------------------------------
# end-to-end training bit-identity
# ----------------------------------------------------------------------
class TestTrainingBitIdentity:
    """fast fit == reference fit, history and weights byte for byte."""

    def test_mlp_identical(self):
        assert_identical_runs(build_mlp)

    def test_mlp_relu_tanh_identical(self):
        def build():
            rng = np.random.default_rng(3)
            return Sequential([
                Dense(20, 16, activation="relu", rng=rng),
                Dense(16, 12, activation="tanh", rng=rng),
                Dense(12, 10, activation="identity", rng=rng),
            ])
        assert_identical_runs(build)

    def test_conv_stack_identical(self):
        assert_identical_runs(build_conv, shape=(2, 14, 14))

    def test_connection_table_identical(self):
        assert_identical_runs(lambda: build_conv(table=True),
                              shape=(2, 14, 14))

    def test_ragged_single_sample_tail(self):
        """n % batch == 1: the smallest possible final batch."""
        assert_identical_runs(build_mlp, n=33, batch=16)

    def test_projected_sgd_identical(self):
        """Constrained retraining: projection rebinds every weight
        tensor after each step, forcing plan revalidation."""
        assert_identical_runs(build_mlp, post_step_bits=8, epochs=3)


# ----------------------------------------------------------------------
# direct kernel-call parity
# ----------------------------------------------------------------------
class TestDirectKernelParity:
    """train_forward / train_backward / sgd_update called directly."""

    def _twins(self):
        return build_mlp(), build_mlp()

    def test_train_forward_identical(self):
        net_ref, net_fast = self._twins()
        x = np.random.default_rng(1).normal(size=(9, 20))
        ref = get_backend("reference").train_forward(net_ref, x)
        fast = get_backend("fast").train_forward(net_fast, x)
        assert ref.tobytes() == fast.tobytes()

    def test_train_backward_identical(self):
        net_ref, net_fast = self._twins()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(9, 20))
        grad = rng.normal(size=(9, 10))
        get_backend("reference").train_forward(net_ref, x)
        get_backend("fast").train_forward(net_fast, x)
        gx_ref = get_backend("reference").train_backward(net_ref, grad)
        gx_fast = get_backend("fast").train_backward(net_fast, grad)
        assert gx_ref.tobytes() == gx_fast.tobytes()
        for layer_ref, layer_fast in zip(net_ref.layers, net_fast.layers):
            assert set(layer_ref.grads) == set(layer_fast.grads)
            for key in layer_ref.grads:
                assert layer_ref.grads[key].tobytes() == \
                    layer_fast.grads[key].tobytes()

    def test_sgd_update_identical(self):
        net_ref, net_fast = self._twins()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(9, 20))
        grad = rng.normal(size=(9, 10))
        vel_ref, vel_fast = {}, {}
        for step in range(4):  # momentum state carries across steps
            for network, velocity, backend in (
                    (net_ref, vel_ref, "reference"),
                    (net_fast, vel_fast, "fast")):
                be = get_backend(backend)
                be.train_forward(network, x)
                be.train_backward(network, grad)
                be.sgd_update(network, velocity, 0.05, 0.9)
        assert state_bytes(net_ref) == state_bytes(net_fast)
        assert set(vel_ref) == set(vel_fast)
        for slot in vel_ref:
            assert vel_ref[slot].tobytes() == vel_fast[slot].tobytes()

    def test_fast_falls_back_on_float32(self):
        """Non-float64 inputs bypass the plans but still train."""
        net_ref, net_fast = self._twins()
        net_fast.set_train_backend("fast")
        x = np.random.default_rng(4).normal(size=(5, 20)).astype(
            np.float32)
        ref = net_ref.forward(x.astype(np.float64))
        fast = net_fast.forward(x)
        np.testing.assert_allclose(ref, fast, rtol=1e-6)


# ----------------------------------------------------------------------
# backend plumbing
# ----------------------------------------------------------------------
class TestTrainBackendPlumbing:
    def test_default_is_reference(self):
        assert build_mlp().train_backend == "reference"

    def test_auto_resolves_to_fast(self):
        network = build_mlp()
        network.set_train_backend("auto")
        assert network.train_backend == "fast"
        assert network.train_kernel is get_backend("auto")

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception):
            build_mlp().set_train_backend("gpu")

    def test_config_validates_train_backend(self):
        from repro.pipeline.config import PipelineConfig, \
            PipelineConfigError

        config = PipelineConfig(app="mnist_mlp", train_backend="reference")
        assert config.to_dict()["train_backend"] == "reference"
        with pytest.raises(PipelineConfigError):
            PipelineConfig(app="mnist_mlp", train_backend="gpu")

    def test_search_space_carries_train_backend(self):
        from repro.explore.space import SearchSpace

        space = SearchSpace(app="mnist_mlp", designs=("asm2",),
                            train_backend="reference")
        assert space.to_dict()["train_backend"] == "reference"
        for candidate in space.grid():
            assert candidate.train_backend == "reference"


class TestTrainBackendCacheNeutrality:
    """Runs differing only in train_backend share every cache entry."""

    BUDGET = {"name": "micro", "n_train": 60, "n_test": 30,
              "max_epochs": 1, "retrain_epochs": 1}

    def _pipeline(self, **overrides):
        from repro.pipeline.config import PipelineConfig
        from repro.pipeline.pipeline import Pipeline

        base = dict(app="mnist_mlp", designs=("conventional", "asm1"),
                    stages=("train", "quantize", "constrain", "evaluate"),
                    budget=self.BUDGET)
        base.update(overrides)
        return Pipeline(PipelineConfig(**base))

    def test_stage_keys_identical_across_backends(self):
        fast = self._pipeline()                     # default "auto"
        reference = self._pipeline(train_backend="reference")
        plan = fast.plan()
        assert plan == reference.plan()
        for stage in plan:
            assert fast.stage_key(stage, plan) == \
                reference.stage_key(stage, plan), stage

    def test_backends_produce_identical_reports(self):
        fast = self._pipeline().run()
        reference = self._pipeline(train_backend="reference").run()
        assert fast.evaluate == reference.evaluate
        assert fast.train == reference.train


# ----------------------------------------------------------------------
# trainer validation + telemetry satellites
# ----------------------------------------------------------------------
class TestTrainerValidation:
    def test_mismatched_validation_pair_rejected(self):
        network = build_mlp()
        trainer = Trainer(network, SGD(network), batch_size=8)
        x = np.zeros((10, 20))
        y = np.eye(10)[np.zeros(10, dtype=int)]
        with pytest.raises(ValueError, match="validation"):
            trainer.fit(x, y, np.zeros((5, 20)),
                        np.zeros(4, dtype=int))

    def test_mismatched_training_pair_rejected(self):
        network = build_mlp()
        trainer = Trainer(network, SGD(network), batch_size=8)
        with pytest.raises(ValueError, match="training"):
            trainer.fit(np.zeros((10, 20)),
                        np.eye(10)[np.zeros(9, dtype=int)],
                        np.zeros((5, 20)), np.zeros(5, dtype=int))


class TestTrainingTelemetry:
    def _epoch(self, backend):
        network = build_mlp()
        network.set_train_backend(backend)
        trainer = Trainer(network, SGD(network), batch_size=8,
                          rng=np.random.default_rng(5))
        rng = np.random.default_rng(7)
        x = rng.normal(size=(37, 20))
        y = np.eye(10)[rng.integers(0, 10, size=37)]
        trainer.train_epoch(x, y)

    def test_epoch_counters(self):
        obs.enable()
        self._epoch("fast")
        registry = obs.registry()
        assert registry.counter("train.batches").value == 5.0
        assert registry.counter("train.samples").value == 37.0
        assert registry.counter("kernels.calls", backend="fast",
                                kernel="train_step").value == 5.0
        assert registry.counter("kernels.seconds", backend="fast",
                                kernel="train_step").value > 0.0

    def test_backend_labels_the_counter(self):
        obs.enable()
        self._epoch("reference")
        assert obs.registry().counter(
            "kernels.calls", backend="reference",
            kernel="train_step").value == 5.0

    def test_disabled_obs_records_nothing(self):
        self._epoch("fast")
        assert obs.registry().counter("train.batches").value == 0.0
