"""Tests for the cycle-accurate CSHM engine simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4
from repro.asm.constraints import WeightConstrainer
from repro.fixedpoint.binary import popcount_array
from repro.hardware.engine import LayerWork, ProcessingEngine
from repro.hardware.simulator import CycleAccurateEngine

RNG = np.random.default_rng(17)


class TestPopcountArray:
    def test_known_values(self):
        np.testing.assert_array_equal(
            popcount_array(np.array([0, 1, 3, 255])), [0, 1, 2, 8])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount_array(np.array([-1]))

    @given(st.lists(st.integers(min_value=0, max_value=2**40),
                    min_size=1, max_size=20))
    def test_matches_scalar(self, values):
        from repro.fixedpoint.binary import popcount
        expected = [popcount(v) for v in values]
        np.testing.assert_array_equal(popcount_array(np.array(values)),
                                      expected)


def _constrained_weights(shape, bits, aset, rng=RNG):
    limit = 2 ** (bits - 1)
    raw = rng.integers(-limit + 1, limit, size=shape)
    return WeightConstrainer(bits, aset).constrain_array(raw)


class TestCycleCounts:
    def test_matches_analytic_engine(self):
        """Cycle count equals the analytic model's for the same layer."""
        weights = _constrained_weights((20, 10), 8, ALPHA_1)
        inputs = RNG.integers(-100, 100, size=20)
        sim = CycleAccurateEngine(8, ALPHA_1)
        trace = sim.run_layer(weights, inputs)
        analytic = ProcessingEngine(8, ALPHA_1).layer_cycles(
            LayerWork("fc", 10, 20))
        assert trace.cycles == analytic

    def test_ragged_group_utilization(self):
        # 5 neurons on 4 lanes: second group runs 1/4 full
        weights = _constrained_weights((8, 5), 8, ALPHA_1)
        inputs = RNG.integers(-100, 100, size=8)
        trace = CycleAccurateEngine(8, ALPHA_1).run_layer(weights, inputs)
        assert trace.utilization == pytest.approx((4 + 1) / (2 * 4))

    def test_full_groups_fully_utilized(self):
        weights = _constrained_weights((6, 8), 8, ALPHA_1)
        inputs = RNG.integers(-100, 100, size=6)
        trace = CycleAccurateEngine(8, ALPHA_1).run_layer(weights, inputs)
        assert trace.utilization == 1.0

    def test_macs_counted(self):
        weights = _constrained_weights((6, 8), 8, ALPHA_1)
        inputs = RNG.integers(-100, 100, size=6)
        trace = CycleAccurateEngine(8, ALPHA_1).run_layer(weights, inputs)
        assert trace.macs == 48


class TestEnergySemantics:
    def test_zero_inputs_minimal_energy(self):
        """An all-zero activation stream toggles almost nothing."""
        weights = _constrained_weights((16, 8), 8, ALPHA_1)
        zeros = np.zeros(16, dtype=np.int64)
        actives = RNG.integers(-120, 120, size=16)
        sim = CycleAccurateEngine(8, ALPHA_1)
        quiet = sim.run_layer(weights, zeros)
        busy = sim.run_layer(weights, actives)
        assert quiet.energy_nj < 0.05 * busy.energy_nj

    def test_data_dependence(self):
        """Sparser activations -> fewer toggles -> less energy."""
        weights = _constrained_weights((64, 8), 8, ALPHA_1)
        dense = RNG.integers(-120, 120, size=64)
        sparse = dense.copy()
        sparse[::2] = 0
        sim = CycleAccurateEngine(8, ALPHA_1)
        assert sim.run_layer(weights, sparse).energy_nj < \
            sim.run_layer(weights, dense).energy_nj

    def test_man_cheaper_than_conventional_on_same_data(self):
        """MAN has no bank toggles; with identical effective weights the
        conventional engine pays extra for nothing on this comparison."""
        weights = _constrained_weights((32, 8), 8, ALPHA_2)
        inputs = RNG.integers(-120, 120, size=32)
        man = CycleAccurateEngine(8, ALPHA_2).run_layer(weights, inputs)
        assert man.toggles.bank_outputs > 0
        man1 = CycleAccurateEngine(
            8, ALPHA_1).run_layer(
            WeightConstrainer(8, ALPHA_1).constrain_array(weights), inputs)
        assert man1.toggles.bank_outputs == 0

    def test_deterministic(self):
        weights = _constrained_weights((16, 8), 8, ALPHA_4)
        inputs = RNG.integers(-100, 100, size=16)
        sim = CycleAccurateEngine(8, ALPHA_4)
        a = sim.run_layer(weights, inputs)
        b = sim.run_layer(weights, inputs)
        assert a == b

    def test_toggle_totals(self):
        weights = _constrained_weights((8, 4), 8, ALPHA_2)
        inputs = RNG.integers(-100, 100, size=8)
        trace = CycleAccurateEngine(8, ALPHA_2).run_layer(weights, inputs)
        t = trace.toggles
        assert t.total == (t.input_bus + t.bank_outputs + t.products
                           + t.accumulators)
        assert t.total > 0


class TestValidation:
    def test_unconstrained_weights_rejected(self):
        weights = np.full((4, 2), 105)  # R=9 unsupported under {1,3}
        inputs = np.ones(4, dtype=np.int64)
        with pytest.raises(ValueError):
            CycleAccurateEngine(8, ALPHA_2).run_layer(weights, inputs)

    def test_conventional_accepts_any_weights(self):
        weights = np.full((4, 2), 105)
        inputs = np.ones(4, dtype=np.int64)
        trace = CycleAccurateEngine(8, None).run_layer(weights, inputs)
        assert trace.macs == 8

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            CycleAccurateEngine(8, None).run_layer(
                np.zeros((4, 2), dtype=np.int64),
                np.zeros(5, dtype=np.int64))

    def test_out_of_range_weights(self):
        with pytest.raises(OverflowError):
            CycleAccurateEngine(8, ALPHA_1).run_layer(
                np.full((2, 2), 300), np.ones(2, dtype=np.int64))

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            CycleAccurateEngine(1)
        with pytest.raises(ValueError):
            CycleAccurateEngine(8, units=0)


class TestAgainstAnalyticModel:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=30),
           st.integers(min_value=1, max_value=12))
    def test_cycles_formula(self, fan_in, neurons):
        weights = _constrained_weights((fan_in, neurons), 8, ALPHA_1,
                                       rng=np.random.default_rng(0))
        inputs = np.random.default_rng(1).integers(
            -100, 100, size=fan_in)
        trace = CycleAccurateEngine(8, ALPHA_1).run_layer(weights, inputs)
        assert trace.cycles == -(-neurons // 4) * fan_in

    def test_energy_same_order_as_analytic(self):
        """Toggle-based and average-based energy agree within ~10x (they
        model the same datapath with different abstraction levels)."""
        fan_in, neurons = 64, 16
        weights = _constrained_weights((fan_in, neurons), 8, ALPHA_1)
        inputs = RNG.integers(-120, 120, size=fan_in)
        sim_nj = CycleAccurateEngine(8, ALPHA_1).run_layer(
            weights, inputs).energy_nj
        from repro.hardware.engine import NetworkTopology
        topo = NetworkTopology("t", (LayerWork("fc", neurons, fan_in),))
        analytic_nj = ProcessingEngine(8, ALPHA_1).run(topo).energy_nj
        ratio = sim_nj / analytic_nj
        assert 0.1 < ratio < 10.0
