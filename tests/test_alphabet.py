"""Tests for alphabet sets — anchored on the paper's stated coverage facts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.alphabet import (
    ALPHA_1,
    ALPHA_2,
    ALPHA_4,
    ALPHA_8,
    FULL_ALPHABETS,
    STANDARD_SETS,
    AlphabetSet,
    standard_set,
)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AlphabetSet(())

    def test_rejects_even(self):
        with pytest.raises(ValueError):
            AlphabetSet((2,))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            AlphabetSet((3, 3))

    def test_rejects_descending(self):
        with pytest.raises(ValueError):
            AlphabetSet((3, 1))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            AlphabetSet((17,))
        with pytest.raises(ValueError):
            AlphabetSet((-1,))

    def test_len_and_iter(self):
        assert len(ALPHA_4) == 4
        assert list(ALPHA_4) == [1, 3, 5, 7]

    def test_contains(self):
        assert 3 in ALPHA_2
        assert 5 not in ALPHA_2

    def test_str(self):
        assert str(ALPHA_4) == "{1,3,5,7}"


class TestPaperCoverageFacts:
    """Each fact below is stated verbatim in the paper (§III / §IV.A)."""

    def test_full_set_is_exact(self):
        # "8 alphabets {1,3,5,7,9,11,13,15} are required for bit sequence
        # size of 4 bits"
        assert FULL_ALPHABETS.is_exact(width=4)
        assert len(FULL_ALPHABETS.supported_values(4)) == 16

    def test_four_alphabets_cover_12_of_16(self):
        # "if we use 4 alphabets {1,3,5,7}, we can generate 12 (including 0)
        # out of 16 possible combinations"
        assert len(ALPHA_4.supported_values(4)) == 12

    def test_four_alphabets_unsupported_set(self):
        # "the unsupported bit quartet values are {9,11,13,15}"
        assert sorted(ALPHA_4.unsupported_values(4)) == [9, 11, 13, 15]

    def test_two_alphabets_cover_8_of_16(self):
        # "If we use 2 alphabets {1,3} only, the maximum number of supported
        # combinations out of the 16 is 8"
        assert len(ALPHA_2.supported_values(4)) == 8

    def test_two_alphabets_unsupported_q_r(self):
        # "we cannot support ... 5, 7, 9, 10, 11, 13, 14, 15 for Q and R"
        assert sorted(ALPHA_2.unsupported_values(4)) == [
            5, 7, 9, 10, 11, 13, 14, 15]

    def test_two_alphabets_unsupported_p(self):
        # "we cannot support 5 and 7 for P" (3-bit MSB quartet)
        assert sorted(ALPHA_2.unsupported_values(3)) == [5, 7]

    def test_one_alphabet_supports_powers_of_two(self):
        # MAN: "from 1 (0001) we get 2 (0010), 4 (0100) and 8 (1000)"
        assert sorted(ALPHA_1.supported_values(4)) == [0, 1, 2, 4, 8]


class TestSupportQueries:
    def test_supports(self):
        assert ALPHA_4.supports(10)      # 5 << 1
        assert not ALPHA_4.supports(9)

    def test_supports_rejects_out_of_width(self):
        with pytest.raises(ValueError):
            ALPHA_4.supports(16)

    def test_zero_always_supported(self):
        for aset in STANDARD_SETS.values():
            assert aset.supports(0)

    def test_coverage_fraction(self):
        assert ALPHA_4.coverage(4) == pytest.approx(12 / 16)
        assert ALPHA_2.coverage(4) == pytest.approx(8 / 16)

    def test_is_multiplierless(self):
        assert ALPHA_1.is_multiplierless
        assert not ALPHA_2.is_multiplierless

    def test_width_one(self):
        assert ALPHA_1.supported_values(1) == frozenset({0, 1})

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ALPHA_1.supported_values(0)


class TestStandardSets:
    def test_ladder_contents(self):
        assert standard_set(1) is ALPHA_1
        assert standard_set(2) is ALPHA_2
        assert standard_set(4) is ALPHA_4
        assert standard_set(8) is ALPHA_8

    def test_unknown_count(self):
        with pytest.raises(ValueError):
            standard_set(3)

    def test_sizes(self):
        for count, aset in STANDARD_SETS.items():
            assert len(aset) == count


@st.composite
def alphabet_sets(draw):
    members = draw(st.sets(
        st.sampled_from([1, 3, 5, 7, 9, 11, 13, 15]), min_size=1, max_size=8))
    return AlphabetSet(tuple(sorted(members)))


class TestAlphabetProperties:
    @given(alphabet_sets())
    def test_supported_values_closed_under_double(self, aset):
        """If v is supported and 2v fits the quartet, 2v is supported."""
        supported = aset.supported_values(4)
        for v in supported:
            if 0 < 2 * v < 16:
                assert 2 * v in supported

    @given(alphabet_sets())
    def test_every_supported_value_decomposes(self, aset):
        supported = aset.supported_values(4)
        for v in supported - {0}:
            odd = v
            while odd % 2 == 0:
                odd //= 2
            assert odd in aset

    @given(alphabet_sets())
    def test_monotone_in_alphabets(self, aset):
        """Adding alphabets never shrinks the supported set."""
        grown = frozenset(aset.alphabets) | {1}
        bigger = AlphabetSet(tuple(sorted(grown)))
        assert bigger.supported_values(4) >= aset.supported_values(4) or \
            bigger.supported_values(4) == aset.supported_values(4)

    @given(alphabet_sets(), st.integers(min_value=1, max_value=6))
    def test_coverage_monotone_in_width_count(self, aset, width):
        supported = aset.supported_values(width)
        assert 0 in supported
        assert all(0 <= v < (1 << width) for v in supported)
