"""Tests for the benchmark-trajectory ledger (``repro bench`` /
``repro.obs.history``): entry schema, (git_sha, bench) dedupe, floor /
ceiling / drift gates, trend rendering, git SHA stamping, and the CLI's
exit codes — including nonzero on a seeded synthetic regression."""

import json

import pytest

from repro.cli import main
from repro.obs.history import (
    DEFAULT_GATES,
    HISTORY_FORMAT,
    SUITES,
    Gate,
    HistoryError,
    append_entry,
    check_gates,
    entry_from_payload,
    format_trend,
    git_sha,
    load_history,
    resolve_metric,
)


def _entry(bench="kernels", sha="a" * 40, host="box", **results):
    return {"format": HISTORY_FORMAT, "bench": bench, "git_sha": sha,
            "host": host, "repro_version": "test",
            "bench_format": f"repro-bench/{bench}/1", "results": results}


SPEEDUP_GATE = Gate("kernels", "case.speedup", floor=3.0,
                    tolerance_pct=20.0, window=3)
OVERHEAD_GATE = Gate("obs", "overhead_pct", ceiling=1.0,
                     tolerance_pct=50.0)


# ----------------------------------------------------------------------
# git sha stamping
# ----------------------------------------------------------------------
class TestGitSha:
    def test_env_var_wins(self, monkeypatch):
        monkeypatch.setenv("GIT_COMMIT", "deadbeef")
        assert git_sha() == "deadbeef"

    def test_falls_back_to_rev_parse(self, monkeypatch):
        monkeypatch.delenv("GIT_COMMIT", raising=False)
        sha = git_sha()     # the test suite runs inside the repo
        assert sha == "unknown" or (len(sha) == 40
                                    and all(c in "0123456789abcdef"
                                            for c in sha))

    def test_unknown_outside_a_repo(self, monkeypatch, tmp_path):
        monkeypatch.delenv("GIT_COMMIT", raising=False)
        assert git_sha(cwd=str(tmp_path)) == "unknown"


# ----------------------------------------------------------------------
# ledger file
# ----------------------------------------------------------------------
class TestLedger:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(str(tmp_path / "none.jsonl")) == []

    def test_append_and_reload(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        append_entry(path, _entry(sha="a" * 40))
        append_entry(path, _entry(sha="b" * 40))
        shas = [e["git_sha"] for e in load_history(path)]
        assert shas == ["a" * 40, "b" * 40]

    def test_same_sha_and_bench_replaces(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        append_entry(path, _entry(sha="a" * 40, speedup=1.0))
        append_entry(path, _entry(sha="a" * 40, speedup=2.0))
        entries = load_history(path)
        assert len(entries) == 1
        assert entries[0]["results"] == {"speedup": 2.0}

    def test_same_sha_different_bench_keeps_both(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        append_entry(path, _entry(bench="kernels"))
        append_entry(path, _entry(bench="obs"))
        assert len(load_history(path)) == 2

    def test_rejects_bad_json_and_bad_format(self, tmp_path):
        bad = tmp_path / "h.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(HistoryError, match="not valid JSON"):
            load_history(str(bad))
        bad.write_text(json.dumps({"format": "something/else"}) + "\n")
        with pytest.raises(HistoryError, match="expected format"):
            load_history(str(bad))

    def test_entry_from_payload(self, monkeypatch):
        monkeypatch.setenv("GIT_COMMIT", "cafe")
        payload = {"format": "repro-bench/kernels/1", "host": "h",
                   "repro_version": "1.8.0", "git_sha": "stamped",
                   "results": {"x": 1}}
        entry = entry_from_payload("kernels", payload)
        assert entry["format"] == HISTORY_FORMAT
        assert entry["git_sha"] == "stamped"      # payload stamp wins
        assert entry["results"] == {"x": 1}
        with pytest.raises(HistoryError, match="no 'results'"):
            entry_from_payload("kernels", {"host": "h"})

    def test_checked_in_ledger_is_valid_and_green(self):
        entries = load_history("BENCH_HISTORY.jsonl")
        assert {e["bench"] for e in entries} >= set(SUITES)
        assert check_gates(entries) == []


# ----------------------------------------------------------------------
# gates
# ----------------------------------------------------------------------
class TestGates:
    def test_gate_requires_exactly_one_bound(self):
        with pytest.raises(ValueError, match="exactly one"):
            Gate("kernels", "x")
        with pytest.raises(ValueError, match="exactly one"):
            Gate("kernels", "x", floor=1.0, ceiling=2.0)

    def test_resolve_metric_walks_dots(self):
        results = {"case": {"speedup": 4.2}, "flat": 1}
        assert resolve_metric(results, "case.speedup") == 4.2
        assert resolve_metric(results, "flat") == 1
        assert resolve_metric(results, "case.missing") is None
        assert resolve_metric(results, "case") is None      # not scalar

    def test_empty_history_passes_vacuously(self):
        assert check_gates([], (SPEEDUP_GATE,)) == []

    def test_floor_violation(self):
        entries = [_entry(case={"speedup": 2.5})]
        violations = check_gates(entries, (SPEEDUP_GATE,))
        assert [v.kind for v in violations] == ["floor"]
        assert "2.5" in violations[0].render()

    def test_ceiling_violation(self):
        entries = [_entry(bench="obs", overhead_pct=1.7)]
        violations = check_gates(entries, (OVERHEAD_GATE,))
        assert [v.kind for v in violations] == ["ceiling"]

    def test_missing_tracked_metric_is_a_violation(self):
        entries = [_entry(other=1.0)]
        violations = check_gates(entries, (SPEEDUP_GATE,))
        assert [v.kind for v in violations] == ["missing"]

    def test_drift_regression_fails(self):
        entries = [_entry(sha=f"{i:040x}", case={"speedup": 10.0})
                   for i in range(3)]
        entries.append(_entry(sha="f" * 40, case={"speedup": 7.0}))
        violations = check_gates(entries, (SPEEDUP_GATE,))
        assert [v.kind for v in violations] == ["drift"]
        assert "30.0% worse" in violations[0].message

    def test_drift_within_tolerance_passes(self):
        entries = [_entry(sha=f"{i:040x}", case={"speedup": 10.0})
                   for i in range(3)]
        entries.append(_entry(sha="f" * 40, case={"speedup": 9.0}))
        assert check_gates(entries, (SPEEDUP_GATE,)) == []

    def test_drift_ignores_other_hosts(self):
        entries = [_entry(sha=f"{i:040x}", host="fast-box",
                          case={"speedup": 100.0}) for i in range(3)]
        entries.append(_entry(sha="f" * 40, host="slow-box",
                              case={"speedup": 5.0}))
        # 5.0 clears the floor; the fast-box history must not count
        assert check_gates(entries, (SPEEDUP_GATE,)) == []

    def test_drift_direction_for_ceiling_metrics(self):
        entries = [_entry(bench="obs", sha=f"{i:040x}",
                          overhead_pct=0.2) for i in range(3)]
        entries.append(_entry(bench="obs", sha="f" * 40,
                              overhead_pct=0.8))
        violations = check_gates(entries, (OVERHEAD_GATE,))
        assert [v.kind for v in violations] == ["drift"]

    def test_improvement_never_fails_drift(self):
        entries = [_entry(sha=f"{i:040x}", case={"speedup": 5.0})
                   for i in range(3)]
        entries.append(_entry(sha="f" * 40, case={"speedup": 50.0}))
        assert check_gates(entries, (SPEEDUP_GATE,)) == []

    def test_default_gates_mirror_ci_floors(self):
        by_metric = {(gate.bench, gate.metric): gate
                     for gate in DEFAULT_GATES}
        assert len(by_metric) == len(DEFAULT_GATES)
        assert by_metric[
            "kernels", "dense_mlp_8b_asm2.speedup"].floor == 3.0
        assert by_metric[
            "simulator", "dense_400x120_8b_asm2.speedup"].floor == 20.0
        assert by_metric[
            "training", "mlp_1024x100x10_8b_asm2.speedup"].floor == 3.0
        assert by_metric[
            "training", "train_epoch_mlp_8b.speedup"].floor == 2.0
        assert by_metric["obs", "overhead_pct"].ceiling == 1.0

    def test_format_trend_lists_every_gate(self):
        entries = [_entry(case={"speedup": 4.0})]
        text = format_trend(entries, (SPEEDUP_GATE, OVERHEAD_GATE))
        assert "kernels.case.speedup" in text
        assert "(no entries)" in text            # obs has none
        assert "4" in text


# ----------------------------------------------------------------------
# the repro bench CLI
# ----------------------------------------------------------------------
class TestBenchCli:
    def test_check_green_ledger_exits_zero(self, tmp_path, capsys):
        path = str(tmp_path / "h.jsonl")
        append_entry(path, _entry(
            bench="kernels", dense_mlp_8b_asm2={"speedup": 5.0}))
        assert main(["bench", "--check", "--history", path]) == 0
        assert "all trajectory gates pass" in capsys.readouterr().out

    def test_check_seeded_regression_exits_nonzero(self, tmp_path, capsys):
        path = str(tmp_path / "h.jsonl")
        append_entry(path, _entry(
            bench="kernels", dense_mlp_8b_asm2={"speedup": 1.2}))
        assert main(["bench", "--check", "--history", path]) == 1
        assert "GATE FAILED" in capsys.readouterr().err

    def test_check_drift_regression_exits_nonzero(self, tmp_path, capsys):
        path = str(tmp_path / "h.jsonl")
        for i in range(4):
            append_entry(path, _entry(bench="obs", sha=f"{i:040x}",
                                      overhead_pct=0.1))
        append_entry(path, _entry(bench="obs", sha="f" * 40,
                                  overhead_pct=0.9))
        assert main(["bench", "--check", "--history", path]) == 1
        err = capsys.readouterr().err
        assert "drift" in err

    def test_empty_history_check_is_a_noop(self, tmp_path, capsys):
        path = str(tmp_path / "h.jsonl")
        assert main(["bench", "--check", "--history", path]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_unknown_suite_is_rejected(self, tmp_path, capsys):
        assert main(["bench", "nope", "--history",
                     str(tmp_path / "h.jsonl")]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_corrupt_ledger_is_rejected(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        path.write_text("garbage\n")
        assert main(["bench", "--check", "--history", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err
