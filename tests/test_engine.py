"""Tests for the CSHM processing engine."""

import pytest

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4
from repro.hardware.engine import (
    LayerWork,
    NetworkTopology,
    ProcessingEngine,
)

SVHN_SIZES = [734, 242, 198, 194, 182, 10]
TICH_SIZES = [305, 190, 175, 80, 36]


@pytest.fixture(scope="module")
def svhn():
    return NetworkTopology.from_layer_sizes("svhn", 1024, SVHN_SIZES)


class TestLayerWork:
    def test_total_macs(self):
        assert LayerWork("fc", 100, 1024).total_macs == 102400

    def test_rejects_zero_neurons(self):
        with pytest.raises(ValueError):
            LayerWork("fc", 0, 10)

    def test_rejects_negative_macs(self):
        with pytest.raises(ValueError):
            LayerWork("fc", 10, -1)


class TestNetworkTopology:
    def test_from_layer_sizes_macs(self):
        t = NetworkTopology.from_layer_sizes("mnist", 1024, [100, 10])
        assert t.total_macs == 1024 * 100 + 100 * 10
        assert t.total_neurons == 110

    def test_table4_svhn_counts(self, svhn):
        # Table IV: 1560 neurons; synapses = MACs + biases
        assert svhn.total_neurons == 1560
        assert svhn.total_macs + svhn.total_neurons == 1054260

    def test_table4_tich_counts(self):
        t = NetworkTopology.from_layer_sizes("tich", 1024, TICH_SIZES)
        assert t.total_neurons == 786
        assert t.total_macs + t.total_neurons == 421186

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NetworkTopology("empty", ())


class TestCycles:
    def test_units_divide_neurons(self):
        engine = ProcessingEngine(8, ALPHA_1)
        layer = LayerWork("fc", 8, 100)
        assert engine.layer_cycles(layer) == 2 * 100

    def test_ragged_group_rounds_up(self):
        engine = ProcessingEngine(8, ALPHA_1)
        layer = LayerWork("fc", 9, 100)
        assert engine.layer_cycles(layer) == 3 * 100

    def test_svhn_last_two_layer_fraction(self, svhn):
        """Paper §VI.E: the last 2 layers of the 6-layer SVHN net use only
        ~3.84% of total processing cycles (our reconstruction: ~3.6%)."""
        report = ProcessingEngine(8, ALPHA_1).run(svhn)
        fraction = report.layer_cycle_fraction(2)
        assert 0.025 <= fraction <= 0.05

    def test_fraction_bounds(self, svhn):
        report = ProcessingEngine(8, ALPHA_1).run(svhn)
        assert report.layer_cycle_fraction(0) == 0.0
        assert report.layer_cycle_fraction(len(SVHN_SIZES)) == 1.0
        with pytest.raises(ValueError):
            report.layer_cycle_fraction(7)

    def test_cycles_independent_of_alphabets(self, svhn):
        conv = ProcessingEngine(8, None).run(svhn)
        man = ProcessingEngine(8, ALPHA_1).run(svhn)
        assert conv.cycles == man.cycles  # iso-speed, same schedule


class TestEnergy:
    def test_man_saves_energy(self, svhn):
        conv = ProcessingEngine(8, None).run(svhn)
        man = ProcessingEngine(8, ALPHA_1).run(svhn)
        assert man.energy_nj < conv.energy_nj

    def test_energy_ordering_by_alphabets(self, svhn):
        conv = ProcessingEngine(8, None).run(svhn).energy_nj
        a4 = ProcessingEngine(8, ALPHA_4).run(svhn).energy_nj
        a2 = ProcessingEngine(8, ALPHA_2).run(svhn).energy_nj
        a1 = ProcessingEngine(8, ALPHA_1).run(svhn).energy_nj
        assert a1 < a2 < a4 < conv

    def test_energy_scales_with_network_size(self):
        """Paper Fig. 9: savings grow ~linearly with NN size."""
        small = NetworkTopology.from_layer_sizes("s", 64, [32, 10])
        large = NetworkTopology.from_layer_sizes("l", 1024, [512, 10])
        engine_conv = ProcessingEngine(8, None)
        engine_man = ProcessingEngine(8, ALPHA_1)
        saving_small = (engine_conv.run(small).energy_nj
                        - engine_man.run(small).energy_nj)
        saving_large = (engine_conv.run(large).energy_nj
                        - engine_man.run(large).energy_nj)
        ratio_macs = large.total_macs / small.total_macs
        ratio_saving = saving_large / saving_small
        assert ratio_saving == pytest.approx(ratio_macs, rel=0.01)

    def test_latency_from_cycles(self, svhn):
        report = ProcessingEngine(8, ALPHA_1).run(svhn)
        assert report.latency_us == pytest.approx(
            report.cycles / (3.0 * 1e3))


class TestMixedPlans:
    def test_mixed_label(self, svhn):
        engine = ProcessingEngine(8, ALPHA_1)
        report = engine.run(svhn, [ALPHA_1] * 4 + [ALPHA_2, ALPHA_4])
        assert report.design_label.startswith("mixed(")

    def test_uniform_label(self, svhn):
        engine = ProcessingEngine(8, ALPHA_1)
        assert engine.run(svhn).design_label == "{1}"

    def test_mixed_energy_between_pure_plans(self, svhn):
        """§VI.E: upgrading only the small final layers costs almost nothing."""
        engine = ProcessingEngine(8, ALPHA_1)
        man = engine.run(svhn)
        mixed = engine.run(svhn, [ALPHA_1] * 4 + [ALPHA_2, ALPHA_4])
        a4 = ProcessingEngine(8, ALPHA_4).run(svhn)
        assert man.energy_nj < mixed.energy_nj < a4.energy_nj
        overhead = mixed.energy_nj / man.energy_nj - 1
        assert overhead < 0.05  # "quite small in practice"

    def test_wrong_plan_length(self, svhn):
        with pytest.raises(ValueError):
            ProcessingEngine(8, ALPHA_1).run(svhn, [ALPHA_1])

    def test_conventional_entries_allowed(self, svhn):
        engine = ProcessingEngine(8, ALPHA_1)
        report = engine.run(svhn, [None] * 5 + [ALPHA_1])
        assert "conventional" in report.design_label


class TestDesignCache:
    def test_designs_reused(self, svhn):
        engine = ProcessingEngine(8, ALPHA_1)
        engine.run(svhn)
        engine.run(svhn)
        assert len(engine._design_cache) == 1
