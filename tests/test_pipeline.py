"""Tests for the declarative pipeline: config round-trips, stage
execution, caching/resume bit-identity, legacy-driver equivalence and
the unified CLI."""

import json
import os

import pytest

from repro.pipeline import (
    Budget,
    Pipeline,
    PipelineConfig,
    PipelineConfigError,
    StageError,
    run_pipeline,
)
from repro.pipeline.report import format_report

TINY = {"name": "tiny", "n_train": 250, "n_test": 120,
        "max_epochs": 3, "retrain_epochs": 2}
TINY_BUDGET = Budget("tiny", n_train=250, n_test=120, max_epochs=3,
                     retrain_epochs=2)


def tiny_config(**overrides) -> PipelineConfig:
    base = dict(app="face", designs=("conventional", "asm1"),
                stages=("train", "quantize", "constrain", "evaluate",
                        "energy"),
                budget=TINY, seed=0)
    base.update(overrides)
    return PipelineConfig(**base)


class TestConfigRoundTrips:
    def test_dict_round_trip(self):
        config = tiny_config()
        assert PipelineConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = tiny_config(bits=8, export_design="asm1")
        assert PipelineConfig.from_json(config.to_json()) == config

    def test_file_round_trip(self, tmp_path):
        config = tiny_config()
        path = config.save(str(tmp_path / "cfg.json"))
        assert PipelineConfig.load(path) == config

    def test_toml_load(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # noqa: F841 - 3.11+
        path = tmp_path / "cfg.toml"
        path.write_text('app = "face"\ndesigns = ["asm1"]\n'
                        'stages = ["energy"]\nbudget = "quick"\n')
        config = PipelineConfig.load(str(path))
        assert config.app == "face"
        assert config.designs == ("asm1",)

    def test_budget_tier_and_inline_table(self):
        assert tiny_config(budget="full").tier().name == "full"
        assert tiny_config(budget=TINY).tier() == TINY_BUDGET
        assert tiny_config(budget=TINY_BUDGET).tier() is TINY_BUDGET

    def test_lists_coerced_to_tuples(self):
        config = PipelineConfig.from_dict(
            {"app": "face", "designs": ["asm1"], "stages": ["energy"]})
        assert config.designs == ("asm1",)
        assert config.stages == ("energy",)

    def test_word_bits_default_and_override(self):
        assert tiny_config().word_bits() == 12   # face Table IV width
        assert tiny_config(bits=8).word_bits() == 8


class TestConfigValidation:
    def test_unknown_key_rejected(self):
        with pytest.raises(PipelineConfigError, match="frobnicate"):
            PipelineConfig.from_dict({"app": "face", "frobnicate": 1})

    def test_unknown_budget_key_rejected(self):
        with pytest.raises(PipelineConfigError, match="n_epochs"):
            tiny_config(budget={**TINY, "n_epochs": 3})

    def test_unknown_app(self):
        with pytest.raises(PipelineConfigError, match="unknown app"):
            tiny_config(app="imagenet")

    def test_unknown_design(self):
        with pytest.raises(PipelineConfigError, match="asm3"):
            tiny_config(designs=("asm3",))

    def test_unknown_stage(self):
        with pytest.raises(PipelineConfigError, match="deploy"):
            tiny_config(stages=("train", "deploy"))

    def test_unknown_budget_tier(self):
        with pytest.raises(PipelineConfigError, match="budget tier"):
            tiny_config(budget="huge")

    def test_bad_quality(self):
        with pytest.raises(PipelineConfigError, match="quality"):
            tiny_config(quality=1.5)

    def test_export_design_must_be_configured(self):
        with pytest.raises(PipelineConfigError, match="export_design"):
            tiny_config(export_design="asm4")

    def test_conventional_only_has_no_export(self):
        config = tiny_config(designs=("conventional",))
        with pytest.raises(PipelineConfigError, match="exportable"):
            config.resolved_export_design()

    def test_export_stage_with_only_conventional_rejected_early(self):
        # must fail at config construction, not after a training run
        with pytest.raises(PipelineConfigError, match="exportable"):
            tiny_config(designs=("conventional",),
                        stages=("train", "constrain", "export"))

    def test_export_stage_override_rejected_before_running(self):
        # the runtime --stages override must hit the same guard in plan()
        config = tiny_config(designs=("conventional",),
                             stages=("train", "quantize"))
        with pytest.raises(PipelineConfigError, match="exportable"):
            Pipeline(config).plan(("export",))

    def test_save_rejects_non_json_extension(self, tmp_path):
        with pytest.raises(PipelineConfigError, match="json"):
            tiny_config().save(str(tmp_path / "cfg.toml"))

    def test_digest_ignores_cache_dir(self):
        a = tiny_config(cache_dir=None)
        b = tiny_config(cache_dir="/tmp/x")
        assert a.digest() == b.digest()
        assert a.digest() != tiny_config(seed=1).digest()


class TestPipelineRun:
    @pytest.fixture(scope="class")
    def report(self):
        return Pipeline(tiny_config()).run()

    def test_stage_order_and_results(self, report):
        assert report.stages_run == ("train", "quantize", "constrain",
                                     "evaluate", "energy")
        assert report.cached_stages == ()
        assert report.train.epochs >= 1
        assert 0.0 <= report.quantize.baseline_accuracy <= 1.0

    def test_conventional_row_is_baseline(self, report):
        row = report.evaluate.row_for("conventional")
        assert row.accuracy == report.quantize.baseline_accuracy
        assert row.loss == 0.0

    def test_asm_row_loss_consistent(self, report):
        row = report.evaluate.row_for("asm1")
        assert row.loss == pytest.approx(
            report.quantize.baseline_accuracy - row.accuracy)

    def test_energy_normalization(self, report):
        assert report.energy.row_for("conventional").normalized == 1.0
        assert report.energy.row_for("asm1").normalized < 1.0

    def test_report_serializes(self, report, tmp_path):
        path = report.save(str(tmp_path / "report.json"))
        data = json.loads(open(path).read())
        assert data["stages"]["evaluate"]["rows"][0]["design"] == \
            "conventional"
        assert format_report(report)  # renders without error

    def test_prerequisites_auto_included(self):
        # asking only for 'evaluate' pulls in train/quantize/constrain
        plan = Pipeline(tiny_config()).plan(("evaluate",))
        assert plan == ("train", "quantize", "constrain", "evaluate")

    def test_missing_state_raises_stage_error(self):
        from repro.pipeline.stages import PipelineContext, stage_quantize

        ctx = PipelineContext(tiny_config())
        with pytest.raises(StageError, match="train"):
            stage_quantize(ctx)  # no train state stashed

    def test_unresolved_ladder_raises_stage_error(self):
        from repro.pipeline.stages import PipelineContext

        ctx = PipelineContext(tiny_config(designs=("ladder",)))
        with pytest.raises(StageError, match="constrain"):
            ctx.design_set("ladder")


class TestCachingResume:
    def test_resume_is_bit_identical(self, tmp_path):
        config = tiny_config(cache_dir=str(tmp_path / "cache"))
        cold = Pipeline(config).run()
        warm = Pipeline(config).run()
        assert warm.cached_stages == warm.stages_run
        cold_dict, warm_dict = cold.to_dict(), warm.to_dict()
        cold_dict.pop("cached_stages")
        warm_dict.pop("cached_stages")
        assert cold_dict == warm_dict

    def test_fresh_run_matches_cached_run(self, tmp_path):
        cached = Pipeline(
            tiny_config(cache_dir=str(tmp_path / "a"))).run()
        fresh = Pipeline(tiny_config()).run()
        cached_dict, fresh_dict = cached.to_dict(), fresh.to_dict()
        # cache_dir is the one config field allowed to differ (and is
        # excluded from the digest for exactly that reason)
        assert cached_dict["config_digest"] == fresh_dict["config_digest"]
        assert cached_dict["stages"] == fresh_dict["stages"]

    def test_partial_resume_after_stage_list_extension(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = Pipeline(tiny_config(
            stages=("train", "quantize"), cache_dir=cache)).run()
        assert first.cached_stages == ()
        # same config digest except stages -> different digest, so the
        # cache key changes; run the full config in its own cache and
        # verify the train result is reused on the second pass
        config = tiny_config(cache_dir=cache)
        second = Pipeline(config).run()
        third = Pipeline(config).run()
        assert "train" in third.cached_stages
        assert third.to_dict()["stages"] == second.to_dict()["stages"]

    def test_no_resume_flag_recomputes(self, tmp_path):
        config = tiny_config(cache_dir=str(tmp_path / "cache"))
        Pipeline(config).run()
        report = Pipeline(config).run(resume=False)
        assert report.cached_stages == ()

    def test_stage_plan_is_part_of_cache_key(self, tmp_path):
        """A run with a restricted --stages plan must not poison the
        cache for the full plan (evaluate's losses depend on whether
        quantize ran)."""
        config = tiny_config(designs=("asm1",),
                             cache_dir=str(tmp_path / "cache"))
        partial = Pipeline(config).run(stages=("evaluate",))
        assert partial.evaluate.row_for("asm1").loss is None
        full = Pipeline(config).run()   # default plan includes quantize
        assert "evaluate" not in full.cached_stages
        assert full.evaluate.row_for("asm1").loss is not None


class TestLegacyEquivalence:
    """The acceptance criterion: pipeline numbers == legacy driver
    numbers, bit for bit."""

    def test_export_matches_legacy_inline_sequence(self, tmp_path,
                                                   monkeypatch):
        """Pipeline export numbers == the *pre-pipeline* run_export
        sequence, re-implemented inline (run_export itself is now a
        pipeline wrapper, so comparing against it would be circular)."""
        import numpy as np
        from repro.asm.alphabet import standard_set
        from repro.asm.constraints import WeightConstrainer
        from repro.datasets.registry import (
            BENCHMARKS, build_model, load_dataset)
        from repro.experiments.config import TRAIN_SETTINGS
        from repro.nn.optim import SGD
        from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
        from repro.nn.trainer import Trainer
        from repro.serving.registry import ModelRegistry
        from repro.training.constrained import (
            ConstraintProjector, constrained_trainer)

        monkeypatch.chdir(tmp_path)
        app, num_alphabets, seed = "mnist_mlp", 2, 0
        spec_row = BENCHMARKS[app]
        bits = spec_row.bits
        settings = TRAIN_SETTINGS[app]
        alphabet_set = standard_set(num_alphabets)
        dataset = load_dataset(app, n_train=TINY["n_train"],
                               n_test=TINY["n_test"], seed=seed)
        model = build_model(app, seed=seed + 1)
        x_train, x_test = dataset.flat_train, dataset.flat_test
        Trainer(model, SGD(model, settings.learning_rate),
                batch_size=settings.batch_size,
                patience=settings.patience).fit(
            x_train, dataset.y_train_onehot, x_test, dataset.y_test,
            max_epochs=TINY["max_epochs"])
        projector = ConstraintProjector(model, bits, alphabet_set)
        constrained_trainer(
            model, SGD(model, settings.learning_rate
                       * settings.retrain_lr_scale), projector,
            batch_size=settings.batch_size,
            patience=settings.patience).fit(
            x_train, dataset.y_train_onehot, x_test, dataset.y_test,
            max_epochs=TINY["retrain_epochs"])
        constrainer = WeightConstrainer(bits, alphabet_set)
        quantized = QuantizedNetwork.from_float(
            model, QuantizationSpec(bits, alphabet_set,
                                    constrainer=constrainer))
        legacy_path = os.path.join("legacy-artifacts",
                                   f"{app}-asm{num_alphabets}")
        quantized.export(legacy_path)
        compiled = ModelRegistry().register(legacy_path, name=app).model
        assert np.array_equal(quantized.forward(x_test),
                              compiled.forward(x_test))
        legacy_quantized_accuracy = quantized.accuracy(
            x_test, dataset.y_test)
        legacy_compiled_accuracy = compiled.accuracy(
            x_test, dataset.y_test)
        legacy_energy = compiled.energy_per_inference_nj()

        config = PipelineConfig.load(os.path.join(
            os.path.dirname(__file__), "..", "examples", "configs",
            "digits_quick.json")).with_overrides(
                budget=TINY, export_dir="pipeline-artifacts")
        report = run_pipeline(config)
        assert report.evaluate.row_for("asm2").accuracy == \
            legacy_quantized_accuracy
        assert report.serve_check.compiled_accuracy == \
            legacy_compiled_accuracy
        assert report.serve_check.energy_nj_per_inference == \
            legacy_energy
        assert report.serve_check.num_params == compiled.num_params
        assert report.serve_check.bit_identical
        assert report.export.spec_label == quantized.spec.label

    def test_accuracy_grid_matches_inline_methodology(self):
        """Pipeline accuracy == the pre-pipeline driver sequence
        (train, baseline, restore+retrain per count, ASM accuracy)."""
        import numpy as np  # noqa: F401 - parity with legacy imports
        from repro.asm.alphabet import standard_set
        from repro.datasets.registry import (
            BENCHMARKS, build_model, load_dataset, training_arrays)
        from repro.experiments.accuracy import run_accuracy_grid
        from repro.experiments.config import TRAIN_SETTINGS
        from repro.nn.optim import SGD
        from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
        from repro.nn.trainer import Trainer
        from repro.training.constrained import (
            ConstraintProjector, constrained_trainer)

        app, count, seed = "face", 1, 0
        spec = BENCHMARKS[app]
        settings = TRAIN_SETTINGS[app]
        dataset = load_dataset(app, n_train=TINY["n_train"],
                               n_test=TINY["n_test"], seed=seed)
        model = build_model(app, seed=seed + 1)
        x_train, x_test = training_arrays(dataset, spec)
        Trainer(model, SGD(model, settings.learning_rate),
                batch_size=settings.batch_size,
                patience=settings.patience).fit(
            x_train, dataset.y_train_onehot, x_test, dataset.y_test,
            max_epochs=TINY["max_epochs"])
        baseline = QuantizedNetwork.from_float(
            model, QuantizationSpec(spec.bits)).accuracy(
                x_test, dataset.y_test)
        restore = model.state()
        alphabet_set = standard_set(count)
        model.load_state(restore)
        projector = ConstraintProjector(model, spec.bits, alphabet_set)
        constrained_trainer(
            model, SGD(model, settings.learning_rate
                       * settings.retrain_lr_scale), projector,
            batch_size=settings.batch_size,
            patience=settings.patience).fit(
            x_train, dataset.y_train_onehot, x_test, dataset.y_test,
            max_epochs=TINY["retrain_epochs"])
        constrained_accuracy = QuantizedNetwork.from_float(
            model, QuantizationSpec.constrained(
                spec.bits, alphabet_set)).accuracy(
                    x_test, dataset.y_test)

        grid = run_accuracy_grid(app, alphabet_counts=(count,),
                                 budget_override=TINY_BUDGET, seed=seed)
        assert grid.baseline.accuracy == baseline
        assert grid.row_for(count).accuracy == constrained_accuracy


class TestLadderDesign:
    def test_ladder_resolves_and_evaluates(self):
        config = tiny_config(designs=("conventional", "ladder"),
                             quality=0.5, ladder=(1, 2))
        report = Pipeline(config).run()
        outcome = report.constrain.outcome_for("ladder")
        assert outcome.chosen_alphabets in (1, 2)
        assert len(outcome.ladder_accuracies) >= 1
        row = report.evaluate.row_for("ladder")
        assert 0.0 <= row.accuracy <= 1.0
        energy = report.energy.row_for("ladder")
        assert energy.normalized < 1.0


class TestMixedDesign:
    def test_mixed_plan_runs_for_mnist(self):
        config = PipelineConfig(
            app="mnist_mlp", designs=("conventional", "mixed"),
            stages=("train", "quantize", "constrain", "evaluate",
                    "energy"),
            budget=TINY, seed=0)
        report = Pipeline(config).run()
        row = report.evaluate.row_for("mixed")
        assert row.label.startswith("mixed(")
        energy = report.energy.row_for("mixed")
        assert 0.0 < energy.normalized < 1.0

    def test_mixed_rejected_for_apps_without_plan(self):
        # must fail at config time, not after a full training run
        with pytest.raises(PipelineConfigError, match="mixed"):
            tiny_config(designs=("mixed",))  # face has no §VI.E plan

    def test_mixed_export_label_is_not_conventional(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.chdir(tmp_path)
        config = PipelineConfig(
            app="mnist_mlp", designs=("mixed",),
            stages=("train", "constrain", "export", "serve-check"),
            budget=TINY, seed=0)
        report = Pipeline(config).run()
        assert report.export.spec_label == \
            "8b-mixed({1}|{1,3,5,7})-constrained"
        assert report.serve_check.bit_identical
        # the reloaded bundle reports the same honest label
        from repro.serving.compiled import CompiledModel
        assert CompiledModel.load(report.export.path).spec_label == \
            report.export.spec_label


class TestCLI:
    def test_list_exits_zero(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mnist_mlp" in out and "serve-check" in out

    def test_run_config_writes_report(self, tmp_path, monkeypatch,
                                      capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        config = tiny_config(stages=("energy",))
        path = config.save("cfg.json")
        assert main(["run", path, "--json", "out.json", "--quiet"]) == 0
        assert os.path.exists("out.json")
        data = json.loads(open("out.json").read())
        assert data["stages_run"] == ["energy"]

    def test_run_stage_override(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        path = tiny_config().save("cfg.json")
        assert main(["run", path, "--stages", "energy", "--quiet"]) == 0
        assert "Stage: energy" in capsys.readouterr().out

    def test_run_bad_config_is_error_exit(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"app": "face", "bogus_key": 1}')
        assert main(["run", str(bad)]) == 1
        assert "bogus_key" in capsys.readouterr().err

    def test_experiment_subcommand(self, capsys):
        from repro.cli import main
        assert main(["experiment", "table5"]) == 0
        assert "45nm" in capsys.readouterr().out

    def test_package_exports(self):
        import repro
        assert repro.__version__ == "1.9.0"
        assert repro.PipelineConfig is PipelineConfig
        assert repro.run_pipeline is run_pipeline
        from repro.kernels import get_backend
        assert repro.get_backend is get_backend
        from repro.explore import SearchSpace, run_exploration
        assert repro.SearchSpace is SearchSpace
        assert repro.run_exploration is run_exploration
        with pytest.raises(AttributeError):
            repro.nonexistent_name


class TestDeprecationShims:
    def test_runner_shim_exits_zero(self, capsys):
        from repro.experiments.runner import main
        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "fig7" in captured.out
        assert "deprecated" in captured.err

    def test_repro_serve_shim_help(self, capsys):
        from repro.serving.server import deprecated_main
        with pytest.raises(SystemExit) as excinfo:
            deprecated_main(["--help"])
        assert excinfo.value.code == 0
        assert "deprecated" in capsys.readouterr().err
