"""Tests for activations and the hardware sigmoid LUT."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.activations import (
    Identity,
    ReLU,
    Sigmoid,
    SigmoidLUT,
    Tanh,
    get_activation,
    softmax,
)

FLOATS = arrays(np.float64, (13,), elements=st.floats(-30, 30))


class TestSigmoid:
    def test_midpoint(self):
        assert Sigmoid().forward(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_limits(self):
        s = Sigmoid().forward(np.array([-500.0, 500.0]))
        assert s[0] == pytest.approx(0.0, abs=1e-12)
        assert s[1] == pytest.approx(1.0, abs=1e-12)

    def test_no_overflow_warnings(self):
        with np.errstate(over="raise"):
            Sigmoid().forward(np.array([-1000.0, 1000.0]))

    @given(FLOATS)
    def test_range(self, z):
        s = Sigmoid().forward(z)
        assert np.all((s >= 0) & (s <= 1))

    @given(FLOATS)
    def test_derivative_matches_finite_difference(self, z):
        act = Sigmoid()
        h = 1e-6
        numeric = (act.forward(z + h) - act.forward(z - h)) / (2 * h)
        np.testing.assert_allclose(act.derivative(z), numeric, atol=1e-5)


class TestTanhReluIdentity:
    @given(FLOATS)
    def test_tanh_derivative(self, z):
        act = Tanh()
        h = 1e-6
        numeric = (act.forward(z + h) - act.forward(z - h)) / (2 * h)
        np.testing.assert_allclose(act.derivative(z), numeric, atol=1e-5)

    def test_relu_forward(self):
        out = ReLU().forward(np.array([-2.0, 0.0, 3.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 3.0])

    def test_relu_derivative(self):
        out = ReLU().derivative(np.array([-2.0, 0.5]))
        np.testing.assert_array_equal(out, [0.0, 1.0])

    def test_identity(self):
        z = np.array([1.5, -2.0])
        np.testing.assert_array_equal(Identity().forward(z), z)
        np.testing.assert_array_equal(Identity().derivative(z), [1.0, 1.0])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        z = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        np.testing.assert_allclose(softmax(z).sum(axis=1), [1.0, 1.0])

    def test_stability_with_large_values(self):
        z = np.array([[1000.0, 1001.0]])
        probs = softmax(z)
        assert np.all(np.isfinite(probs))
        assert probs[0, 1] > probs[0, 0]

    @given(arrays(np.float64, (4, 6), elements=st.floats(-50, 50)))
    def test_invariant_to_shift(self, z):
        np.testing.assert_allclose(softmax(z), softmax(z + 7.0), atol=1e-12)


class TestGetActivation:
    def test_by_name(self):
        assert get_activation("tanh").name == "tanh"

    def test_passthrough_instance(self):
        act = Sigmoid()
        assert get_activation(act) is act

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_activation("swish9000")


class TestSigmoidLUT:
    def test_monotone(self):
        lut = SigmoidLUT(input_bits=8, output_bits=8)
        values = np.linspace(-10, 10, 201)
        out = lut(values)
        assert np.all(np.diff(out) >= 0)

    def test_close_to_float_sigmoid(self):
        lut = SigmoidLUT(input_bits=10, output_bits=10)
        values = np.linspace(-6, 6, 101)
        exact = Sigmoid().forward(values)
        assert np.max(np.abs(lut(values) - exact)) < 0.02

    def test_clamps_out_of_range(self):
        lut = SigmoidLUT(input_bits=8, output_bits=8, clip=8.0)
        assert lut(np.array([100.0]))[0] == pytest.approx(1.0, abs=0.01)
        assert lut(np.array([-100.0]))[0] == pytest.approx(0.0, abs=0.01)

    def test_output_grid(self):
        lut = SigmoidLUT(input_bits=8, output_bits=4)
        out = lut(np.linspace(-8, 8, 57))
        codes = out * 15
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)

    def test_table_size(self):
        assert len(SigmoidLUT(input_bits=6).table) == 64

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SigmoidLUT(input_bits=1)
        with pytest.raises(ValueError):
            SigmoidLUT(clip=0.0)
