"""Tests for weight constraining (Algorithm 1) and the exact variant."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, FULL_ALPHABETS
from repro.asm.constraints import (
    WeightConstrainer,
    constrain_magnitude_greedy,
    constraint_stats,
    nearest_representable_magnitude,
    nearest_supported,
    representable_magnitudes,
)
from repro.fixedpoint.quartet import LAYOUT_8BIT, LAYOUT_12BIT


class TestNearestSupported:
    def test_paper_rounding_example_down(self):
        # paper: supported neighbours 8 and 12 -> threshold 10; 9 -> 8
        supported = (0, 1, 2, 3, 4, 6, 8, 12)
        assert nearest_supported(9, supported) == 8

    def test_paper_rounding_example_up(self):
        # paper: "if 10 or 11 comes up, we will convert it to 12"
        supported = (0, 1, 2, 3, 4, 6, 8, 12)
        assert nearest_supported(10, supported) == 12
        assert nearest_supported(11, supported) == 12

    def test_already_supported(self):
        assert nearest_supported(6, (0, 2, 6, 8)) == 6

    def test_below_minimum(self):
        assert nearest_supported(-3, (0, 1, 2)) == 0

    def test_above_maximum(self):
        assert nearest_supported(99, (0, 1, 2)) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_supported(1, ())

    @given(st.integers(min_value=0, max_value=20),
           st.sets(st.integers(min_value=0, max_value=16),
                   min_size=1, max_size=10))
    def test_result_is_a_nearest_member(self, value, members):
        supported = tuple(sorted(members))
        result = nearest_supported(value, supported)
        assert result in supported
        best = min(abs(s - value) for s in supported)
        assert abs(result - value) == best


class TestGreedyConstrain:
    def test_supported_weight_unchanged(self):
        assert constrain_magnitude_greedy(104, LAYOUT_8BIT, ALPHA_2) == 104

    def test_paper_unsupported_lsb(self):
        # 105 has R=9, unsupported under {1,3}; 9 rounds down to 8
        assert constrain_magnitude_greedy(105, LAYOUT_8BIT, ALPHA_2) == 104

    def test_carry_into_next_quartet(self):
        # R=15 under {1,3}: neighbours 12 and 16, threshold 14 -> carry
        result = constrain_magnitude_greedy(15, LAYOUT_8BIT, ALPHA_2)
        assert result == 16

    def test_msb_saturation(self):
        # P=7 unsupported under {1,3} (3-bit quartet): neighbours 6, (no 8)
        result = constrain_magnitude_greedy(0b111_0000, LAYOUT_8BIT, ALPHA_2)
        assert result == 0b110_0000

    def test_full_set_is_identity(self):
        for magnitude in range(128):
            assert constrain_magnitude_greedy(
                magnitude, LAYOUT_8BIT, FULL_ALPHABETS) == magnitude

    def test_zero(self):
        assert constrain_magnitude_greedy(0, LAYOUT_12BIT, ALPHA_1) == 0

    @given(st.integers(min_value=0, max_value=127))
    def test_result_always_representable_8bit(self, magnitude):
        for aset in (ALPHA_1, ALPHA_2, ALPHA_4):
            result = constrain_magnitude_greedy(magnitude, LAYOUT_8BIT, aset)
            assert result in representable_magnitudes(LAYOUT_8BIT, aset)

    @given(st.integers(min_value=0, max_value=2047))
    def test_result_always_representable_12bit(self, magnitude):
        for aset in (ALPHA_1, ALPHA_2, ALPHA_4):
            result = constrain_magnitude_greedy(magnitude, LAYOUT_12BIT, aset)
            assert result in representable_magnitudes(LAYOUT_12BIT, aset)

    @given(st.integers(min_value=0, max_value=2047))
    def test_idempotent(self, magnitude):
        once = constrain_magnitude_greedy(magnitude, LAYOUT_12BIT, ALPHA_2)
        twice = constrain_magnitude_greedy(once, LAYOUT_12BIT, ALPHA_2)
        assert once == twice


class TestRepresentableGrid:
    def test_8bit_alpha2_grid_size(self):
        # R has 8 supported values, P (3-bit) has 6 -> 48 magnitudes
        assert len(representable_magnitudes(LAYOUT_8BIT, ALPHA_2)) == 48

    def test_8bit_alpha1_grid_size(self):
        # R: {0,1,2,4,8} (5), P: {0,1,2,4} (4) -> 20
        assert len(representable_magnitudes(LAYOUT_8BIT, ALPHA_1)) == 20

    def test_full_set_grid_is_everything(self):
        assert representable_magnitudes(LAYOUT_8BIT, FULL_ALPHABETS) == \
            tuple(range(128))

    def test_grid_sorted_unique(self):
        grid = representable_magnitudes(LAYOUT_12BIT, ALPHA_2)
        assert list(grid) == sorted(set(grid))

    def test_zero_and_max_patterns(self):
        grid = representable_magnitudes(LAYOUT_8BIT, ALPHA_2)
        assert 0 in grid
        assert 0b110_1100 in grid  # P=6, R=12 both supported


class TestNearestRepresentable:
    @given(st.integers(min_value=0, max_value=2047))
    def test_optimality(self, magnitude):
        grid = representable_magnitudes(LAYOUT_12BIT, ALPHA_2)
        result = nearest_representable_magnitude(
            magnitude, LAYOUT_12BIT, ALPHA_2)
        best = min(abs(g - magnitude) for g in grid)
        assert abs(result - magnitude) == best

    @given(st.integers(min_value=0, max_value=2047))
    def test_greedy_never_beats_exact(self, magnitude):
        exact = nearest_representable_magnitude(
            magnitude, LAYOUT_12BIT, ALPHA_2)
        greedy = constrain_magnitude_greedy(magnitude, LAYOUT_12BIT, ALPHA_2)
        assert abs(exact - magnitude) <= abs(greedy - magnitude)

    def test_greedy_suboptimal_case_exists(self):
        """The quartet walk is not globally optimal — the exact variant is
        strictly better somewhere (motivates the rounding ablation)."""
        layout, aset = LAYOUT_12BIT, ALPHA_2
        gaps = []
        for magnitude in range(2048):
            exact = nearest_representable_magnitude(magnitude, layout, aset)
            greedy = constrain_magnitude_greedy(magnitude, layout, aset)
            gaps.append(abs(greedy - magnitude) - abs(exact - magnitude))
        assert max(gaps) > 0


class TestWeightConstrainer:
    def test_sign_symmetry(self):
        c = WeightConstrainer(8, ALPHA_2)
        for w in range(-127, 128):
            assert c.constrain(-w) == -c.constrain(w)

    def test_most_negative_weight_saturates(self):
        c = WeightConstrainer(8, ALPHA_2)
        assert c.constrain(-128) == c.constrain(-127)

    def test_scalar_array_agreement(self):
        c = WeightConstrainer(8, ALPHA_1)
        weights = np.arange(-128, 128)
        expected = np.array([c.constrain(int(w)) for w in weights])
        np.testing.assert_array_equal(c.constrain_array(weights), expected)

    def test_out_of_range_scalar(self):
        with pytest.raises(OverflowError):
            WeightConstrainer(8, ALPHA_2).constrain(128)

    def test_out_of_range_array(self):
        with pytest.raises(OverflowError):
            WeightConstrainer(8, ALPHA_2).constrain_array(np.array([999]))

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            WeightConstrainer(8, ALPHA_2, mode="magic")

    def test_is_representable(self):
        c = WeightConstrainer(8, ALPHA_2)
        assert c.is_representable(104)
        assert not c.is_representable(105)

    def test_nearest_mode_optimal(self):
        c = WeightConstrainer(8, ALPHA_2, mode="nearest")
        grid = representable_magnitudes(LAYOUT_8BIT, ALPHA_2)
        for w in range(0, 128):
            best = min(abs(g - w) for g in grid)
            assert abs(c.constrain(w) - w) == best

    def test_full_set_identity(self):
        c = WeightConstrainer(8, FULL_ALPHABETS)
        weights = np.arange(-127, 128)
        np.testing.assert_array_equal(c.constrain_array(weights), weights)

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_idempotent_12bit(self, weight):
        c = WeightConstrainer(12, ALPHA_1)
        assert c.constrain(c.constrain(weight)) == c.constrain(weight)

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_constrained_in_range(self, weight):
        c = WeightConstrainer(12, ALPHA_2)
        result = c.constrain(weight)
        assert -2047 <= result <= 2047


class TestConstraintStats:
    def test_no_change_for_representable(self):
        c = WeightConstrainer(8, ALPHA_2)
        weights = np.array(list(c.grid))
        stats = constraint_stats(c, weights)
        assert stats.num_changed == 0
        assert stats.max_abs_error == 0
        assert stats.fraction_changed == 0.0

    def test_counts(self):
        c = WeightConstrainer(8, ALPHA_2)
        stats = constraint_stats(c, np.array([104, 105]))
        assert stats.num_weights == 2
        assert stats.num_changed == 1
        assert stats.max_abs_error == 1
        assert stats.mean_abs_error == pytest.approx(0.5)

    def test_empty(self):
        c = WeightConstrainer(8, ALPHA_2)
        stats = constraint_stats(c, np.array([], dtype=np.int64))
        assert stats.num_weights == 0
        assert stats.fraction_changed == 0.0

    def test_error_bounded_by_grid_geometry(self):
        """Nearest-mode error is at most half the largest interior gap of the
        representable grid, except for saturation above the grid's top value
        (e.g. the 8-bit MAN grid tops out at 72 while weights reach 127)."""
        for bits, layout in ((8, LAYOUT_8BIT), (12, LAYOUT_12BIT)):
            for aset in (ALPHA_1, ALPHA_2, ALPHA_4):
                c = WeightConstrainer(bits, aset, mode="nearest")
                grid = representable_magnitudes(layout, aset)
                max_gap = max(b - a for a, b in zip(grid, grid[1:]))
                saturation = layout.max_magnitude - grid[-1]
                bound = max((max_gap + 1) // 2, saturation)
                weights = np.arange(-layout.max_magnitude,
                                    layout.max_magnitude + 1)
                stats = constraint_stats(c, weights)
                assert stats.max_abs_error <= bound
