"""Tests for the Verilog RTL generator and its mini-interpreter."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, FULL_ALPHABETS
from repro.asm.constraints import WeightConstrainer
from repro.asm.multiplier import AlphabetSetMultiplier
from repro.rtl import (
    evaluate_mac_product,
    generate_asm_mac,
    generate_conventional_mac,
    generate_precompute_bank,
    module_name,
)


class TestModuleNames:
    def test_names(self):
        assert module_name(8, None) == "conv_mac_8b"
        assert module_name(8, ALPHA_1) == "man_mac_8b"
        assert module_name(12, ALPHA_2) == "asm2_mac_12b"
        assert module_name(12, ALPHA_4) == "asm4_mac_12b"


class TestStructure:
    def test_man_has_no_multiply_operator(self):
        """The MAN datapath must contain no '*' — shifts and adds only
        ('@(*)' sensitivity lists excluded)."""
        source = generate_asm_mac(8, ALPHA_1)
        body = "\n".join(line for line in source.splitlines()
                         if not line.strip().startswith("//"))
        assert "*" not in body.replace("@(*)", "@()")

    def test_man_has_no_bank_wires(self):
        source = generate_asm_mac(8, ALPHA_1)
        assert "mult_" not in source

    def test_asm2_has_exactly_one_bank_wire(self):
        source = generate_asm_mac(8, ALPHA_2)
        assert len(re.findall(r"wire signed \[\d+:0\] mult_3", source)) == 1

    def test_asm4_bank_wires(self):
        source = generate_asm_mac(12, ALPHA_4)
        for a in (3, 5, 7):
            assert f"mult_{a}" in source

    def test_conventional_uses_multiplier(self):
        source = generate_conventional_mac(8)
        assert "weight * act" in source

    def test_quartet_count_matches_layout(self):
        source8 = generate_asm_mac(8, ALPHA_1)
        source12 = generate_asm_mac(12, ALPHA_1)
        assert len(re.findall(r"reg signed .* lane\d+;", source8)) == 2
        assert len(re.findall(r"reg signed .* lane\d+;", source12)) == 3

    def test_case_arms_cover_all_quartet_values(self):
        source = generate_asm_mac(8, ALPHA_2)
        # 4-bit quartet: 16 arms; 3-bit MSB quartet: 8 arms
        assert len(re.findall(r"4'd\d+: lane0", source)) == 16
        assert len(re.findall(r"3'd\d+: lane1", source)) == 8

    def test_accumulator_guard_bits(self):
        source = generate_asm_mac(8, ALPHA_1, acc_guard_bits=4)
        assert "signed [19:0] acc" in source

    def test_error_fallback_rejected(self):
        with pytest.raises(ValueError):
            generate_asm_mac(8, ALPHA_2, fallback="error")

    def test_module_endmodule_balance(self):
        for source in (generate_asm_mac(8, ALPHA_2),
                       generate_conventional_mac(12),
                       generate_precompute_bank(8, ALPHA_4)):
            assert source.count("module ") - source.count("endmodule") == 0
            assert source.rstrip().endswith("endmodule")


class TestPrecomputeBankRTL:
    def test_ports_per_alphabet(self):
        source = generate_precompute_bank(8, ALPHA_4)
        for a in (3, 5, 7):
            assert f"mult_{a}" in source
        assert "mult_1" not in source  # pass-through needs no port

    def test_csd_adder_expressions(self):
        source = generate_precompute_bank(8, ALPHA_2)
        # 3 = 4 - 1 in canonical CSD
        assert "- (act <<< 0) + (act <<< 2)" in source


class TestSemanticEquivalence:
    """The emitted case logic must realise exactly the functional model."""

    @pytest.mark.parametrize("bits,aset", [
        (8, ALPHA_1), (8, ALPHA_2), (8, ALPHA_4),
        (12, ALPHA_1), (12, ALPHA_2),
    ], ids=["8b-1a", "8b-2a", "8b-4a", "12b-1a", "12b-2a"])
    def test_matches_model_on_grid(self, bits, aset):
        source = generate_asm_mac(bits, aset, fallback="nearest")
        model = AlphabetSetMultiplier(bits, aset, fallback="nearest")
        constrainer = WeightConstrainer(bits, aset)
        limit = 2 ** (bits - 1)
        step = 97 if bits == 12 else 17
        for raw in range(-limit + 1, limit, step):
            weight = constrainer.constrain(raw)
            for act in (-limit, -3, 0, 7, limit - 1):
                assert evaluate_mac_product(source, weight, act, bits) == \
                    model.multiply(weight, act)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=-127, max_value=127),
           st.integers(min_value=-128, max_value=127))
    def test_nearest_fallback_equivalence_8bit(self, weight, act):
        """Off-grid weights too: the RTL implements the fallback."""
        source = generate_asm_mac(8, ALPHA_2, fallback="nearest")
        model = AlphabetSetMultiplier(8, ALPHA_2, fallback="nearest")
        assert evaluate_mac_product(source, weight, act, 8) == \
            model.multiply(weight, act)

    def test_full_alphabet_rtl_is_exact(self):
        source = generate_asm_mac(8, FULL_ALPHABETS, fallback="nearest")
        for weight in range(-127, 128, 5):
            assert evaluate_mac_product(source, weight, 93, 8) == weight * 93


class TestInterpreter:
    def test_rejects_sourceless_product(self):
        with pytest.raises(ValueError):
            evaluate_mac_product("module m (); endmodule", 1, 1, 8)

    def test_unresolved_identifier_raises(self):
        from repro.rtl.interpreter import _eval_expr
        with pytest.raises(ValueError):
            _eval_expr("mystery_wire + 1", {})
