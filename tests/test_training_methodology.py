"""Tests for constrained retraining, Algorithm 2 and mixed plans."""

import numpy as np
import pytest

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4
from repro.datasets import mlp, synthetic_mnist
from repro.nn.optim import SGD
from repro.training.constrained import (
    ConstraintProjector,
    constrained_trainer,
    weight_param_name,
)
from repro.training.methodology import DesignMethodology
from repro.training.mixed import build_mixed_plan, evaluate_plan

RNG = np.random.default_rng(5)


@pytest.fixture(scope="module")
def small_data():
    return synthetic_mnist(n_train=400, n_test=150, seed=0)


def fresh_model(seed=1):
    return mlp([1024, 30, 10], seed=seed)


class TestWeightParamName:
    def test_dense_and_conv(self):
        from repro.nn.layers import Conv2D, Dense, Flatten, ScaledAvgPool2D
        assert weight_param_name(Dense(2, 2)) == "W"
        assert weight_param_name(Conv2D(1, 1, 1)) == "W"
        assert weight_param_name(ScaledAvgPool2D(1)) == "gain"
        assert weight_param_name(Flatten()) is None


class TestConstraintProjector:
    def test_projection_removes_violations(self):
        model = fresh_model()
        projector = ConstraintProjector(model, 8, ALPHA_1)
        projector.project()
        assert projector.violations() == 0

    def test_fresh_model_has_violations(self):
        model = fresh_model()
        projector = ConstraintProjector(model, 8, ALPHA_1)
        assert projector.violations() > 0

    def test_projection_idempotent(self):
        model = fresh_model()
        projector = ConstraintProjector(model, 8, ALPHA_2)
        projector.project()
        before = model.layers[0].params["W"].copy()
        projector.project()
        np.testing.assert_array_equal(model.layers[0].params["W"], before)

    def test_projection_bounded_movement(self):
        model = fresh_model()
        weights_before = model.layers[0].params["W"].copy()
        projector = ConstraintProjector(model, 8, ALPHA_4)
        projector.project()
        moved = np.abs(model.layers[0].params["W"] - weights_before)
        # movement bounded by a few LSBs of the 8-bit grid
        scale = np.abs(weights_before).max()
        assert moved.max() < scale * 8 / 127

    def test_biases_untouched(self):
        model = fresh_model()
        model.layers[0].params["b"] = RNG.normal(size=30)
        biases = model.layers[0].params["b"].copy()
        ConstraintProjector(model, 8, ALPHA_1).project()
        np.testing.assert_array_equal(model.layers[0].params["b"], biases)

    def test_layer_plan_partial(self):
        model = fresh_model()
        projector = ConstraintProjector(
            model, 8, layer_plan=[ALPHA_1, None])
        assert projector.num_constrained_layers == 1
        w_out_before = model.layers[1].params["W"].copy()
        projector.project()
        np.testing.assert_array_equal(
            model.layers[1].params["W"], w_out_before)

    def test_plan_length_check(self):
        model = fresh_model()
        with pytest.raises(ValueError):
            ConstraintProjector(model, 8, layer_plan=[ALPHA_1])

    def test_needs_set_or_plan(self):
        with pytest.raises(ValueError):
            ConstraintProjector(fresh_model(), 8)

    def test_nearest_mode(self):
        model = fresh_model()
        projector = ConstraintProjector(model, 8, ALPHA_2, mode="nearest")
        projector.project()
        assert projector.violations() == 0


class TestConstrainedTraining:
    def test_training_maintains_constraints(self, small_data):
        model = fresh_model()
        projector = ConstraintProjector(model, 8, ALPHA_1)
        trainer = constrained_trainer(
            model, SGD(model, 0.05), projector, batch_size=32)
        trainer.fit(small_data.flat_train, small_data.y_train_onehot,
                    small_data.flat_test, small_data.y_test, max_epochs=2)
        assert projector.violations() == 0

    def test_constrained_training_still_learns(self, small_data):
        model = fresh_model()
        projector = ConstraintProjector(model, 8, ALPHA_2)
        trainer = constrained_trainer(
            model, SGD(model, 0.1), projector, batch_size=32)
        history = trainer.fit(
            small_data.flat_train, small_data.y_train_onehot,
            small_data.flat_test, small_data.y_test, max_epochs=8)
        assert history.best_accuracy > 0.5  # far above 10% chance


class TestDesignMethodology:
    def test_runs_and_accepts(self, small_data):
        model = fresh_model()
        methodology = DesignMethodology(bits=8, quality=0.9,
                                        ladder=(1, 2, 4, 8))
        result = methodology.run(model, small_data, max_epochs=6,
                                 retrain_epochs=4)
        assert result.succeeded
        assert result.stages
        assert result.chosen_alphabets in (1, 2, 4, 8)

    def test_easy_quality_stops_at_one_alphabet(self, small_data):
        model = fresh_model()
        methodology = DesignMethodology(bits=8, quality=0.5, ladder=(1, 2))
        result = methodology.run(model, small_data, max_epochs=6,
                                 retrain_epochs=3)
        assert result.chosen_alphabets == 1
        assert len(result.stages) == 1

    def test_impossible_quality_escalates(self, small_data):
        model = fresh_model()
        # quality 1.0 forces escalation unless retraining is perfect
        methodology = DesignMethodology(bits=8, quality=1.0, ladder=(1, 8))
        result = methodology.run(model, small_data, max_epochs=6,
                                 retrain_epochs=3)
        assert len(result.stages) >= 1
        # the 8-alphabet (exact) stage always matches the baseline quality
        if not result.stages[0].accepted:
            assert result.stages[-1].num_alphabets == 8

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            DesignMethodology(bits=8, quality=0.0)
        with pytest.raises(ValueError):
            DesignMethodology(bits=8, quality=1.2)

    def test_empty_ladder(self):
        with pytest.raises(ValueError):
            DesignMethodology(bits=8, ladder=())

    def test_accuracy_loss_property(self, small_data):
        model = fresh_model()
        methodology = DesignMethodology(bits=8, quality=0.8, ladder=(1,))
        result = methodology.run(model, small_data, max_epochs=5,
                                 retrain_epochs=3)
        assert result.accuracy_loss == pytest.approx(
            result.baseline_accuracy - result.final_stage.accuracy)


class TestMixedPlans:
    def test_build_mixed_plan_shapes(self):
        model = mlp([1024, 64, 32, 10], seed=0)
        plan = build_mixed_plan(model, [ALPHA_2, ALPHA_4])
        assert plan == [ALPHA_1, ALPHA_2, ALPHA_4]

    def test_plan_too_long(self):
        model = mlp([8, 4, 2], seed=0)
        with pytest.raises(ValueError):
            build_mixed_plan(model, [ALPHA_2, ALPHA_4, ALPHA_4])

    def test_evaluate_plan_energy_ordering(self, small_data):
        """mixed energy sits between all-{1} and conventional."""
        model = fresh_model()
        n = len(model.trainable_layers)
        conventional = evaluate_plan(model, small_data, 8, [None] * n,
                                     label="conv")
        man = evaluate_plan(model, small_data, 8, [ALPHA_1] * n,
                            label="man")
        mixed = evaluate_plan(model, small_data, 8,
                              build_mixed_plan(model, [ALPHA_4]),
                              label="mixed")
        assert man.energy_nj < mixed.energy_nj < conventional.energy_nj

    def test_mixed_energy_overhead_small(self, small_data):
        """§VI.E: upgrading the small output layer costs <5% energy."""
        model = fresh_model()
        n = len(model.trainable_layers)
        man = evaluate_plan(model, small_data, 8, [ALPHA_1] * n,
                            label="man")
        mixed = evaluate_plan(model, small_data, 8,
                              build_mixed_plan(model, [ALPHA_4]),
                              label="mixed")
        assert mixed.energy_nj / man.energy_nj < 1.05

    def test_normalized_energy_helper(self, small_data):
        model = fresh_model()
        n = len(model.trainable_layers)
        conv = evaluate_plan(model, small_data, 8, [None] * n, label="conv")
        man = evaluate_plan(model, small_data, 8, [ALPHA_1] * n, label="man")
        assert man.normalized_energy(conv) == pytest.approx(
            man.energy_nj / conv.energy_nj)
