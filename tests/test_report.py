"""Tests for the plain-text report helpers."""

import pytest

from repro.hardware.report import format_table, normalized_series


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "x"], [["a", 1], ["longer", 2]])
        lines = out.split("\n")
        assert len({line.index("  ") for line in lines}) >= 1
        assert lines[0].startswith("name")
        assert "longer" in lines[3]

    def test_title(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456]])
        assert "0.123" in out

    def test_large_float_formatting(self):
        out = format_table(["v"], [[12345.678]])
        assert "12345.7" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "-" in out


class TestNormalizedSeries:
    def test_default_baseline(self):
        assert normalized_series([4.0, 2.0, 1.0]) == [1.0, 0.5, 0.25]

    def test_explicit_baseline(self):
        assert normalized_series([2.0, 4.0], baseline=8.0) == [0.25, 0.5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalized_series([])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized_series([0.0, 1.0])
