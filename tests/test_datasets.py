"""Tests for the synthetic dataset generators and the benchmark registry."""

import numpy as np
import pytest

from repro.datasets import (
    BENCHMARKS,
    Dataset,
    GLYPHS,
    build_model,
    glyph_strokes,
    load_dataset,
    one_hot,
    render_glyph,
    render_strokes,
    synthetic_faces,
    synthetic_mnist,
    synthetic_svhn,
    synthetic_tich,
)
from repro.datasets.base import balanced_labels


class TestOneHot:
    def test_basic(self):
        encoded = one_hot(np.array([1, 0, 2]), 3)
        np.testing.assert_array_equal(
            encoded, [[0, 1, 0], [1, 0, 0], [0, 0, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)


class TestDatasetContainer:
    def test_flat_views(self):
        data = synthetic_mnist(n_train=10, n_test=5, seed=0)
        assert data.flat_train.shape == (10, 1024)
        assert data.flat_test.shape == (5, 1024)

    def test_subset(self):
        data = synthetic_mnist(n_train=10, n_test=5, seed=0)
        small = data.subset(4, 2)
        assert len(small.x_train) == 4
        assert len(small.x_test) == 2
        np.testing.assert_array_equal(small.x_train, data.x_train[:4])

    def test_subset_too_large(self):
        data = synthetic_mnist(n_train=10, n_test=5, seed=0)
        with pytest.raises(ValueError):
            data.subset(100, 2)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            Dataset("broken", np.zeros((3, 1, 2, 2)), np.zeros(2),
                    np.zeros((1, 1, 2, 2)), np.zeros(1), 2)

    def test_balanced_labels(self):
        labels = balanced_labels(100, 10, np.random.default_rng(0))
        counts = np.bincount(labels, minlength=10)
        assert np.all(counts == 10)


class TestStrokeFont:
    def test_all_36_glyphs_defined(self):
        assert len(GLYPHS) == 36
        for char in "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ":
            assert glyph_strokes(char)

    def test_unknown_glyph(self):
        with pytest.raises(KeyError):
            glyph_strokes("@")

    def test_render_range_and_shape(self):
        rng = np.random.default_rng(0)
        image = render_glyph("7", rng, image_size=32)
        assert image.shape == (32, 32)
        assert image.min() >= 0.0 and image.max() <= 1.0
        assert image.max() > 0.5  # something was drawn

    def test_render_deterministic_given_rng_state(self):
        a = render_glyph("3", np.random.default_rng(7))
        b = render_glyph("3", np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_render_strokes_validation(self):
        with pytest.raises(ValueError):
            render_strokes([[(0, 0), (1, 1)]], image_size=2)
        with pytest.raises(ValueError):
            render_strokes([[(0, 0), (1, 1)]], thickness=0.0)

    def test_point_stroke_draws_dot(self):
        image = render_strokes([[(0.5, 0.5), (0.5, 0.5)]], image_size=16,
                               thickness=0.1)
        assert image.max() > 0.9


@pytest.mark.parametrize("factory,n_classes", [
    (synthetic_mnist, 10),
    (synthetic_faces, 2),
    (synthetic_svhn, 10),
    (synthetic_tich, 36),
])
class TestGenerators:
    def test_shapes_and_classes(self, factory, n_classes):
        data = factory(n_train=n_classes * 2, n_test=n_classes, seed=0)
        assert data.n_classes == n_classes
        assert data.x_train.shape[1:] == (1, 32, 32)
        assert data.y_train.min() >= 0
        assert data.y_train.max() < n_classes

    def test_reproducible(self, factory, n_classes):
        a = factory(n_train=8, n_test=4, seed=5)
        b = factory(n_train=8, n_test=4, seed=5)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_seed_changes_data(self, factory, n_classes):
        a = factory(n_train=8, n_test=4, seed=1)
        b = factory(n_train=8, n_test=4, seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_pixel_range(self, factory, n_classes):
        data = factory(n_train=6, n_test=3, seed=0)
        assert data.x_train.min() >= 0.0
        assert data.x_train.max() <= 1.0

    def test_rejects_empty(self, factory, n_classes):
        with pytest.raises(ValueError):
            factory(n_train=0, n_test=1)


class TestDifficultyOrdering:
    """The substitution contract (DESIGN.md §4): faces < mnist < svhn in
    difficulty, measured by a small fixed-budget classifier."""

    @staticmethod
    def _probe_accuracy(data, seed=0):
        from repro.datasets import mlp
        from repro.nn import SGD, Trainer
        model = mlp([data.num_features, 48, data.n_classes], seed=seed)
        trainer = Trainer(model, SGD(model, 0.25), batch_size=32,
                          patience=2)
        history = trainer.fit(data.flat_train, data.y_train_onehot,
                              data.flat_test, data.y_test, max_epochs=8)
        return history.best_accuracy

    def test_svhn_harder_than_mnist(self):
        mnist = self._probe_accuracy(synthetic_mnist(600, 200, seed=0))
        svhn = self._probe_accuracy(synthetic_svhn(600, 200, seed=0))
        assert svhn < mnist

    def test_faces_accuracy_high(self):
        faces = self._probe_accuracy(synthetic_faces(600, 200, seed=0))
        assert faces > 0.85


class TestRegistry:
    def test_all_five_benchmarks(self):
        assert set(BENCHMARKS) == {"mnist_mlp", "mnist_cnn", "face",
                                   "svhn", "tich"}

    @pytest.mark.parametrize("key", list(BENCHMARKS))
    def test_table4_counts_exact(self, key):
        spec = BENCHMARKS[key]
        model = build_model(key)
        assert model.num_params == spec.table4_synapses
        assert model.num_neurons == spec.table4_neurons

    @pytest.mark.parametrize("key", list(BENCHMARKS))
    def test_table4_layer_counts(self, key):
        spec = BENCHMARKS[key]
        model = build_model(key)
        assert len(model.topology().layers) == spec.table4_layers

    def test_load_dataset_passes_counts(self):
        data = load_dataset("face", n_train=6, n_test=4, seed=3)
        assert len(data.x_train) == 6
        assert len(data.x_test) == 4

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            build_model("imagenet")
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_bits_assignment_matches_table4(self):
        assert BENCHMARKS["mnist_mlp"].bits == 8
        assert BENCHMARKS["mnist_cnn"].bits == 12
        assert BENCHMARKS["face"].bits == 12
        assert BENCHMARKS["svhn"].bits == 8
        assert BENCHMARKS["tich"].bits == 8
