"""Tests for the design-space exploration subsystem: Pareto dominance
edge cases, search-space round-trips and enumeration, custom per-layer
design tokens, cross-config stage-cache sharing, serial-vs-parallel
bit-identity of journals and frontiers, resume semantics, frontier
export into the serving registry, and the ``repro explore`` CLI."""

import json
import os

import pytest

from repro.explore import (
    ExplorationJournal,
    JournalError,
    SearchSpace,
    SearchSpaceError,
    dominates,
    format_exploration_report,
    pareto_frontier,
    register_frontier,
    resolve_objectives,
    run_exploration,
)
from repro.explore.report import ExplorationReport
from repro.explore.strategies import random_candidates
from repro.pipeline import (
    Pipeline,
    PipelineConfig,
    PipelineConfigError,
    StageError,
    parse_design,
)
from repro.pipeline.pipeline import list_cached_runs

TINY = {"name": "tiny", "n_train": 250, "n_test": 120,
        "max_epochs": 3, "retrain_epochs": 2}


def tiny_space(**overrides) -> SearchSpace:
    base = dict(app="face", designs=("conventional", "asm1"),
                budgets=(TINY,), seeds=(0,))
    base.update(overrides)
    return SearchSpace(**base)


# ----------------------------------------------------------------------
# Pareto utilities
# ----------------------------------------------------------------------
class TestPareto:
    MIN_E = resolve_objectives(("energy_nj",))
    ACC_E = resolve_objectives(("accuracy", "energy_nj"))

    def test_basic_dominance(self):
        a = {"accuracy": 0.9, "energy_nj": 10.0}
        b = {"accuracy": 0.8, "energy_nj": 20.0}
        assert dominates(a, b, self.ACC_E)
        assert not dominates(b, a, self.ACC_E)

    def test_trade_off_is_incomparable(self):
        a = {"accuracy": 0.9, "energy_nj": 20.0}
        b = {"accuracy": 0.8, "energy_nj": 10.0}
        assert not dominates(a, b, self.ACC_E)
        assert not dominates(b, a, self.ACC_E)

    def test_equal_points_do_not_dominate(self):
        a = {"accuracy": 0.9, "energy_nj": 10.0}
        assert not dominates(a, dict(a), self.ACC_E)

    def test_tie_on_one_axis_still_dominates(self):
        a = {"accuracy": 0.9, "energy_nj": 10.0}
        b = {"accuracy": 0.9, "energy_nj": 20.0}
        assert dominates(a, b, self.ACC_E)

    def test_frontier_trade_off_curve(self):
        points = [
            {"accuracy": 0.95, "energy_nj": 100.0},   # accuracy corner
            {"accuracy": 0.90, "energy_nj": 40.0},    # knee
            {"accuracy": 0.85, "energy_nj": 20.0},    # energy corner
            {"accuracy": 0.84, "energy_nj": 50.0},    # dominated by knee
        ]
        assert pareto_frontier(points, self.ACC_E) == (0, 1, 2)

    def test_duplicate_points_all_kept(self):
        points = [
            {"accuracy": 0.9, "energy_nj": 10.0},
            {"accuracy": 0.9, "energy_nj": 10.0},
            {"accuracy": 0.8, "energy_nj": 30.0},
        ]
        assert pareto_frontier(points, self.ACC_E) == (0, 1)

    def test_single_objective_keeps_all_ties(self):
        points = [{"energy_nj": 5.0}, {"energy_nj": 3.0},
                  {"energy_nj": 3.0}, {"energy_nj": 9.0}]
        assert pareto_frontier(points, self.MIN_E) == (1, 2)

    def test_single_point(self):
        assert pareto_frontier([{"energy_nj": 1.0}], self.MIN_E) == (0,)

    def test_empty_points(self):
        assert pareto_frontier([], self.MIN_E) == ()

    def test_no_objectives_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier([{"energy_nj": 1.0}], ())
        with pytest.raises(ValueError, match="at least one"):
            resolve_objectives(())

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="throughput"):
            resolve_objectives(("throughput",))


# ----------------------------------------------------------------------
# SearchSpace
# ----------------------------------------------------------------------
class TestSearchSpace:
    def test_dict_round_trip(self):
        space = tiny_space(seeds=(0, 1), qualities=(0.9,))
        assert SearchSpace.from_dict(space.to_dict()) == space

    def test_toml_load(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "space.toml"
        path.write_text(
            'app = "face"\ndesigns = ["conventional", "asm1"]\n'
            'bits = [0, 8]\nseeds = [0, 1]\n\n'
            '[[budgets]]\nname = "tiny"\nn_train = 100\nn_test = 50\n'
            'max_epochs = 2\nretrain_epochs = 1\n')
        space = SearchSpace.load(str(path))
        assert space.bits == (None, 8)      # 0 means Table IV default
        assert space.budgets[0].n_train == 100
        assert SearchSpace.from_dict(space.to_dict()) == space

    def test_json_load(self, tmp_path):
        space = tiny_space()
        path = tmp_path / "space.json"
        path.write_text(json.dumps(space.to_dict()))
        assert SearchSpace.load(str(path)) == space

    def test_unknown_key_rejected(self):
        with pytest.raises(SearchSpaceError, match="frobnicate"):
            SearchSpace.from_dict({"app": "face", "frobnicate": 1})

    def test_validation_errors(self):
        with pytest.raises(SearchSpaceError, match="unknown app"):
            tiny_space(app="imagenet")
        with pytest.raises(SearchSpaceError, match="strategy"):
            tiny_space(strategy="anneal")
        with pytest.raises(SearchSpaceError, match="objective"):
            tiny_space(objectives=("throughput",))
        with pytest.raises(SearchSpaceError, match="must not be empty"):
            tiny_space(designs=())
        with pytest.raises(SearchSpaceError, match="duplicate"):
            tiny_space(designs=("asm1", "asm1"))
        with pytest.raises(SearchSpaceError, match="sensitivity count"):
            tiny_space(sensitivity_counts=(3,))
        with pytest.raises(SearchSpaceError, match="budget tier"):
            tiny_space(budgets=("huge",))
        with pytest.raises(SearchSpaceError, match="asm3"):
            tiny_space(designs=("asm3",))
        with pytest.raises(SearchSpaceError, match="mixed"):
            tiny_space(app="face", designs=("mixed",))  # no §VI.E plan

    def test_name_defaults_to_app(self):
        assert tiny_space().name == "face"
        assert tiny_space(name="sweep").name == "sweep"

    def test_digest_tracks_content(self):
        assert tiny_space().digest() == tiny_space().digest()
        assert tiny_space().digest() != tiny_space(seeds=(1,)).digest()

    def test_grid_canonicalises_irrelevant_axes(self):
        # conventional ignores mode+quality; asm ignores quality: the
        # 2 designs x 2 modes x 2 qualities cross collapses to 1 + 2
        space = tiny_space(designs=("conventional", "asm1"),
                           constraint_modes=("greedy", "nearest"),
                           qualities=(0.99, 0.9))
        grid = space.grid()
        assert len(grid) == 3
        digests = [config.digest() for config in grid]
        assert len(set(digests)) == len(digests)

    def test_grid_ladder_keeps_quality_axis(self):
        space = tiny_space(designs=("ladder",), qualities=(0.99, 0.9))
        assert len(space.grid()) == 2

    def test_max_candidates_truncates(self):
        space = tiny_space(seeds=(0, 1, 2), max_candidates=4)
        assert len(space.grid()) == 4

    def test_grid_carries_cache_dir(self):
        grid = tiny_space().grid(cache_dir="/tmp/c")
        assert all(config.cache_dir == "/tmp/c" for config in grid)

    def test_random_sampling_deterministic_subset(self):
        space = tiny_space(seeds=(0, 1, 2, 3), strategy="random", samples=3)
        first = random_candidates(space)
        second = random_candidates(space)
        assert first == second
        assert len(first) == 3
        grid_digests = {c.digest() for c in space.grid()}
        assert all(c.digest() in grid_digests for c in first)

    def test_random_sampling_caps_at_grid(self):
        space = tiny_space(strategy="random", samples=50)
        assert random_candidates(space) == space.grid()


# ----------------------------------------------------------------------
# custom per-layer design tokens
# ----------------------------------------------------------------------
class TestCustomPlanTokens:
    def test_parse_design_plan(self):
        assert parse_design("mixed:1-0") == (1, 0)
        assert parse_design("mixed:0-2-4") == (0, 2, 4)
        assert parse_design("mixed") == "mixed"

    def test_bad_counts_rejected(self):
        with pytest.raises(PipelineConfigError, match="no standard"):
            parse_design("mixed:3-1")
        with pytest.raises(PipelineConfigError, match="constrains no"):
            parse_design("mixed:0-0")
        with pytest.raises(PipelineConfigError, match="unknown design"):
            parse_design("mixed:")

    def test_pipeline_runs_custom_plan(self, tmp_path):
        config = PipelineConfig(
            app="face", designs=("conventional", "mixed:1-0"),
            stages=("train", "quantize", "constrain", "evaluate",
                    "energy"),
            budget=TINY, seed=0)
        report = Pipeline(config).run()
        row = report.evaluate.row_for("mixed:1-0")
        assert row.label == "mixed({1},exact)"
        assert report.constrain.outcome_for("mixed:1-0").epochs >= 0
        energy = report.energy.row_for("mixed:1-0")
        # layer 1 on the MAN datapath, layer 2 exact: cheaper than the
        # all-conventional engine
        conventional = report.energy.row_for("conventional")
        assert energy.energy_nj < conventional.energy_nj
        assert energy.area_um2 > 0 and energy.latency_us > 0

    def test_wrong_plan_length_is_stage_error(self):
        config = PipelineConfig(app="face", designs=("mixed:1-0-2",),
                                stages=("energy",), budget=TINY)
        with pytest.raises(StageError, match="3 layer counts"):
            Pipeline(config).run()


# ----------------------------------------------------------------------
# stage-cache sharing and run markers
# ----------------------------------------------------------------------
class TestSharedStageCache:
    def test_cross_config_train_sharing(self, tmp_path):
        cache = str(tmp_path / "cache")
        base = dict(app="face", stages=("train", "quantize", "constrain",
                                        "evaluate", "energy"),
                    budget=TINY, seed=0, cache_dir=cache)
        first = Pipeline(PipelineConfig(
            designs=("conventional",), **base)).run()
        assert first.cached_stages == ()
        # different design list, same app/bits/budget/seed: train and
        # quantize come from the first run's cache
        second = Pipeline(PipelineConfig(designs=("asm1",), **base)).run()
        assert "train" in second.cached_stages
        assert "quantize" in second.cached_stages
        assert "constrain" not in second.cached_stages
        # and the shared train state is bit-identical to a cold run
        cold = Pipeline(PipelineConfig(
            designs=("asm1",), **{**base, "cache_dir": None})).run()
        assert cold.to_dict()["stages"] == second.to_dict()["stages"]

    def test_run_markers_listed(self, tmp_path):
        cache = str(tmp_path / "cache")
        config = PipelineConfig(app="face", designs=("asm1",),
                                stages=("energy",), budget=TINY,
                                cache_dir=cache)
        Pipeline(config).run()
        runs = list_cached_runs(cache)
        assert len(runs) == 1
        assert runs[0]["app"] == "face"
        assert runs[0]["designs"] == ["asm1"]
        assert runs[0]["config_digest"] == config.digest()
        assert list_cached_runs(str(tmp_path / "missing")) == []

    def test_concurrent_writers_share_one_cache(self, tmp_path):
        """Two processes racing on the same config + cache_dir both
        succeed and leave a usable cache (atomic writes)."""
        import multiprocessing

        cache = str(tmp_path / "cache")
        config = PipelineConfig(app="face", designs=("asm1",),
                                stages=("train", "constrain", "evaluate"),
                                budget=TINY, cache_dir=cache)
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        with ctx.Pool(2) as pool:
            results = pool.map(_run_config_dict, [config.to_dict()] * 2)
        assert results[0] == results[1]
        warm = Pipeline(config).run()
        assert warm.cached_stages == warm.stages_run
        assert warm.to_dict()["stages"] == results[0]


# ----------------------------------------------------------------------
# exploration end-to-end
# ----------------------------------------------------------------------
class TestExploration:
    @pytest.fixture(scope="class")
    def journal_dir(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("explore") / "journal")

    @pytest.fixture(scope="class")
    def report(self, journal_dir):
        return run_exploration(tiny_space(), journal_dir, jobs=1)

    def test_records_and_frontier(self, report):
        assert len(report.records) == 2
        assert [r["design"] for r in report.records] == \
            ["conventional", "asm1"]
        assert report.frontier                      # never empty
        # the energy optimum is always asm1; it must be on the frontier
        assert report.best("energy_nj")["design"] == "asm1"
        frontier_designs = {r["design"] for r in report.frontier_records()}
        assert "asm1" in frontier_designs

    def test_records_have_all_metric_axes(self, report):
        from repro.explore.executor import METRIC_KEYS
        for record in report.records:
            assert set(record["metrics"]) == set(METRIC_KEYS)
            assert record["config"]["cache_dir"] is None

    def test_report_round_trip_and_formatting(self, report, tmp_path):
        path = report.save(str(tmp_path / "report.json"))
        data = json.load(open(path))
        rebuilt = ExplorationReport.from_dict(data)
        assert rebuilt.frontier == report.frontier
        assert rebuilt.records == report.records
        text = format_exploration_report(report)
        assert "Pareto frontier" in text
        assert "asm1" in text

    def test_resume_hits_journal_completely(self, journal_dir, report):
        again = run_exploration(tiny_space(), journal_dir, jobs=1)
        assert again.journal_hits == len(report.records)
        assert again.evaluated == 0
        assert again.records == report.records
        assert again.frontier == report.frontier

    def test_journal_rejects_foreign_space(self, journal_dir):
        with pytest.raises(JournalError, match="different search space"):
            run_exploration(tiny_space(seeds=(7,)), journal_dir)

    def test_register_frontier_into_registry(self, report, tmp_path,
                                             journal_dir):
        from repro.serving.registry import ModelRegistry

        registry = ModelRegistry()
        # no explicit cache_dir: the report remembers the exploration's
        # stage cache, so only the export stage runs
        assert report.cache_dir == os.path.join(journal_dir, "cache")
        entries = register_frontier(
            report, registry=registry,
            export_dir=str(tmp_path / "artifacts"))
        assert [e.name for e in entries] == ["face-asm1"]
        entry = registry.entry("face-asm1")
        assert entry.model.num_params > 0
        assert os.path.isdir(entry.path)

    def test_journal_only_resume_without_pipeline_cache(self, journal_dir):
        """Records alone resume the exploration: no pipeline runs at all,
        so a deleted stage cache does not matter."""
        space = tiny_space()
        journal = ExplorationJournal.open(journal_dir, space)
        digests = {c.digest() for c in space.grid(
            os.path.join(journal_dir, "cache"))}
        assert journal.record_digests() >= digests


class TestSerialParallelBitIdentity:
    @pytest.fixture(scope="class")
    def space(self):
        return tiny_space(seeds=(0, 1))

    @pytest.fixture(scope="class")
    def journals(self, tmp_path_factory, space):
        root = tmp_path_factory.mktemp("bitident")
        serial = str(root / "serial")
        parallel = str(root / "parallel")
        run_exploration(space, serial, jobs=1)
        run_exploration(space, parallel, jobs=2)
        return serial, parallel

    def test_record_files_bit_identical(self, journals):
        serial, parallel = journals
        names = sorted(os.listdir(os.path.join(serial, "records")))
        assert names == sorted(os.listdir(
            os.path.join(parallel, "records")))
        assert len(names) == 4
        for name in names:
            a = open(os.path.join(serial, "records", name), "rb").read()
            b = open(os.path.join(parallel, "records", name), "rb").read()
            assert a == b

    def test_space_and_report_bit_identical(self, journals):
        serial, parallel = journals
        for name in ("space.json", "report.json"):
            a = open(os.path.join(serial, name), "rb").read()
            b = open(os.path.join(parallel, name), "rb").read()
            assert a == b

    def test_frontiers_identical(self, journals):
        serial, parallel = journals
        a = json.load(open(os.path.join(serial, "report.json")))
        b = json.load(open(os.path.join(parallel, "report.json")))
        assert a["frontier"] == b["frontier"]
        assert a["records"] == b["records"]


class TestSensitivityStrategy:
    def test_greedy_per_layer_search(self, tmp_path):
        space = tiny_space(strategy="sensitivity", qualities=(0.5,),
                           sensitivity_counts=(1,))
        report = run_exploration(space, str(tmp_path / "j"))
        designs = [r["design"] for r in report.records]
        assert designs[0] == "conventional"
        # face has 2 parameterised layers: the greedy ladder emits
        # per-layer plans of increasing depth
        assert all(d.startswith("mixed:") for d in designs[1:])
        assert len(designs) <= 3
        depths = [sum(1 for c in d.split(":")[1].split("-") if c != "0")
                  for d in designs[1:]]
        assert depths == sorted(depths)
        assert report.frontier

    def test_sensitivity_resumes(self, tmp_path):
        space = tiny_space(strategy="sensitivity", qualities=(0.5,))
        first = run_exploration(space, str(tmp_path / "j"))
        again = run_exploration(space, str(tmp_path / "j"))
        assert again.evaluated == 0
        assert again.records == first.records

    def test_max_candidates_bounds_search(self, tmp_path):
        space = tiny_space(strategy="sensitivity", qualities=(0.5,),
                           max_candidates=2)
        report = run_exploration(space, str(tmp_path / "j"))
        assert len(report.records) <= 2


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestExploreCLI:
    def _space_file(self, tmp_path) -> str:
        path = tmp_path / "space.json"
        path.write_text(json.dumps(tiny_space(name="cli-space").to_dict()))
        return str(path)

    def test_explore_command(self, tmp_path, capsys):
        from repro.cli import main

        journal = str(tmp_path / "journal")
        code = main(["explore", self._space_file(tmp_path),
                     "--journal", journal, "--quiet",
                     "--json", str(tmp_path / "out.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "Pareto frontier" in out
        assert os.path.isfile(tmp_path / "out.json")
        # resume: instant, 100% journal hits
        code = main(["explore", self._space_file(tmp_path),
                     "--journal", journal, "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 / 0" in out

    def test_explore_bad_space_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"app": "imagenet"}))
        assert main(["explore", str(path)]) == 1
        assert "unknown app" in capsys.readouterr().err

    def test_list_shows_runs_and_journals(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        Pipeline(PipelineConfig(app="face", designs=("asm1",),
                                stages=("energy",), budget=TINY,
                                cache_dir=cache)).run()
        journal = str(tmp_path / "explore" / "journal")
        run_exploration(tiny_space(), journal)
        code = main(["list", "--cache-dir", cache,
                     "--explore-dir", str(tmp_path / "explore")])
        out = capsys.readouterr().out
        assert code == 0
        assert "designs=asm1" in out
        assert "app=face strategy=grid records=2 (report ready)" in out

    def test_run_multi_seed_jobs(self, tmp_path, capsys):
        from repro.cli import main

        config = PipelineConfig(app="face", designs=("asm1",),
                                stages=("energy",), budget=TINY)
        path = config.save(str(tmp_path / "cfg.json"))
        code = main(["run", path, "--seeds", "0,1", "--jobs", "2",
                     "--quiet", "--json", str(tmp_path / "out.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("Pipeline - face") == 2
        data = json.load(open(tmp_path / "out.json"))
        assert len(data["reports"]) == 2
        assert [r["config"]["seed"] for r in data["reports"]] == [0, 1]


def _run_config_dict(config_dict: dict) -> dict:
    """Top-level helper for the concurrent-writers test (picklable)."""
    report = Pipeline(PipelineConfig.from_dict(config_dict)).run()
    return report.to_dict()["stages"]
