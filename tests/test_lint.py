"""Tests for the domain invariant linter (`repro.lint`).

Each rule gets a positive/negative fixture pair under
``tests/fixtures/lint/`` (linted by explicit path — the directory is
excluded from directory walks), plus the acceptance-level checks: the
shipped ``src/`` tree lints clean, suppressions must name their rule,
and RPR002 provably catches a config field that bypasses
``to_dict``/``digest``.
"""

import json
import os
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    META_RULE_ID,
    Finding,
    LintConfig,
    LintConfigError,
    Linter,
    all_rules,
    known_rule_ids,
    lint_paths,
)
from repro.lint.astutil import match_path

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join("tests", "fixtures", "lint")

#: rule id -> (bad fixture, good fixture), relative to the repo root
FIXTURE_PAIRS = {
    "RPR001": (f"{FIXTURES}/rpr001_bad.py", f"{FIXTURES}/rpr001_good.py"),
    "RPR002": (f"{FIXTURES}/rpr002_bad.py", f"{FIXTURES}/rpr002_good.py"),
    "RPR003": (f"{FIXTURES}/rpr003_bad.py", f"{FIXTURES}/rpr003_good.py"),
    "RPR004": (f"{FIXTURES}/rpr004_bad/kernels/reference.py",
               f"{FIXTURES}/rpr004_good/kernels/reference.py"),
    "RPR005": (f"{FIXTURES}/rpr005_bad/explore/journal.py",
               f"{FIXTURES}/rpr005_good/explore/journal.py"),
    "RPR006": (f"{FIXTURES}/rpr006_bad.py", f"{FIXTURES}/rpr006_good.py"),
}


def run_lint(paths, **kwargs):
    return lint_paths(paths, root=REPO_ROOT, **kwargs)


def rules_hit(result):
    return {f.rule for f in result.findings}


class TestRegistry:
    def test_six_rules_registered(self):
        rules = all_rules()
        assert sorted(rules) == ["RPR001", "RPR002", "RPR003",
                                 "RPR004", "RPR005", "RPR006"]
        for rule_id, rule in rules.items():
            assert rule.rule_id == rule_id
            assert rule.title
            assert rule.severity in ("error", "warning")

    def test_meta_rule_reserved(self):
        assert META_RULE_ID == "RPR000"
        assert META_RULE_ID in known_rule_ids()
        assert META_RULE_ID not in all_rules()


class TestFixturePairs:
    """One positive and one negative fixture per rule, exactly."""

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_PAIRS))
    def test_bad_fixture_triggers_rule(self, rule_id):
        bad, _ = FIXTURE_PAIRS[rule_id]
        result = run_lint([bad])
        errors = [f for f in result.findings
                  if f.rule == rule_id and f.severity == "error"]
        assert errors, f"{bad} should trigger {rule_id}"
        for finding in errors:
            assert finding.path == bad
            assert finding.line >= 1

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_PAIRS))
    def test_good_fixture_is_clean(self, rule_id):
        _, good = FIXTURE_PAIRS[rule_id]
        result = run_lint([good])
        assert rule_id not in rules_hit(result), \
            [f.render() for f in result.findings]

    def test_rpr001_counts(self):
        """Constructor, legacy numpy, stdlib random, call + reference."""
        bad, _ = FIXTURE_PAIRS["RPR001"]
        result = run_lint([bad], config=LintConfig(select=["RPR001"]))
        assert len(result.findings) == 5

    def test_rpr006_split_schema_names_baseline(self):
        bad, _ = FIXTURE_PAIRS["RPR006"]
        result = run_lint([bad])
        split = [f for f in result.findings
                 if "one metric name, one label schema" in f.message]
        assert len(split) == 1
        assert bad in split[0].message  # points back at the baseline site


class TestShippedTreeIsClean:
    """Acceptance: `repro lint src/` exits 0 on the final tree."""

    def test_src_lints_clean(self):
        result = run_lint(["src"])
        assert result.findings == [], \
            [f.render() for f in result.findings]
        assert result.ok
        # the one reviewed suppression: the obs.span forwarding shim
        assert result.suppressed == 1
        assert len(result.checked_files) > 50

    def test_fixtures_excluded_from_directory_walks(self):
        result = run_lint(["tests"])
        assert not any(f.path.startswith(f"{FIXTURES}/")
                       for f in result.findings)
        assert not any(p.startswith(f"{FIXTURES}/")
                       for p in result.checked_files)

    def test_explicit_file_bypasses_exclude(self):
        bad, _ = FIXTURE_PAIRS["RPR001"]
        assert run_lint([bad]).findings  # excluded dir, explicit path


class TestCacheKeyOmission:
    """Acceptance: RPR002 catches a field invisible to to_dict/digest."""

    def test_synthetic_subclass_field_is_flagged(self, tmp_path):
        source = textwrap.dedent('''
            from dataclasses import dataclass

            from repro.pipeline.config import PipelineConfig


            @dataclass(frozen=True)
            class ExtendedConfig(PipelineConfig):
                novel_knob: int = 3
        ''')
        path = tmp_path / "extended.py"
        path.write_text(source)
        result = lint_paths([str(path)], root=str(tmp_path),
                            config=LintConfig())
        flagged = [f for f in result.findings if f.rule == "RPR002"]
        assert len(flagged) == 1
        assert "novel_knob" in flagged[0].message
        assert flagged[0].severity == "error"

    def test_subclass_with_overridden_to_dict_is_clean(self, tmp_path):
        source = textwrap.dedent('''
            from dataclasses import dataclass

            from repro.pipeline.config import PipelineConfig


            @dataclass(frozen=True)
            class ExtendedConfig(PipelineConfig):
                novel_knob: int = 3

                def to_dict(self):
                    data = super().to_dict()
                    data["novel_knob"] = self.novel_knob
                    return data
        ''')
        path = tmp_path / "extended.py"
        path.write_text(source)
        result = lint_paths([str(path)], root=str(tmp_path),
                            config=LintConfig())
        assert "RPR002" not in rules_hit(result)


class TestSuppressions:
    def test_scoped_noqa_suppresses(self):
        result = run_lint([f"{FIXTURES}/noqa_ok.py"])
        assert result.findings == []
        assert result.suppressed == 1

    def test_bare_and_unknown_noqa_are_findings(self):
        result = run_lint([f"{FIXTURES}/noqa_bad.py"])
        meta = [f for f in result.findings if f.rule == META_RULE_ID]
        assert len(meta) == 2
        assert "bare" in meta[0].message
        assert "RPR999" in meta[1].message
        # the malformed suppressions do NOT silence the violations
        assert len([f for f in result.findings
                    if f.rule == "RPR001"]) == 2
        assert result.suppressed == 0

    def test_noqa_in_strings_is_inert(self, tmp_path):
        path = tmp_path / "strings.py"
        path.write_text('MARKER = "# repro: noqa[RPR001]"\n')
        result = lint_paths([str(path)], root=str(tmp_path),
                            config=LintConfig())
        assert result.findings == []
        assert result.suppressed == 0

    def test_meta_rule_cannot_be_suppressed(self, tmp_path):
        path = tmp_path / "meta.py"
        path.write_text("x = (  # repro: noqa\n  1)\n")
        result = lint_paths([str(path)], root=str(tmp_path),
                            config=LintConfig())
        assert [f.rule for f in result.findings] == [META_RULE_ID]

    def test_parse_error_is_meta_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        result = lint_paths([str(path)], root=str(tmp_path),
                            config=LintConfig())
        assert [f.rule for f in result.findings] == [META_RULE_ID]
        assert not result.ok


class TestConfig:
    def test_from_dict_rule_tables(self):
        config = LintConfig.from_dict({
            "select": ["rpr001"],
            "exclude": ["generated/"],
            "RPR001": {"allow": ["a.py"], "severity": "warning"},
            "rpr004": {"carriers": ["real"]},
        })
        assert config.select == ["RPR001"]
        assert config.exclude == ["generated/"]
        assert config.options("RPR001", {"allow": []})["allow"] == ["a.py"]
        assert config.severity_override("RPR001") == "warning"
        assert config.options("RPR004", {"carriers": ["real", "scale"]}) \
            == {"carriers": ["real"]}

    def test_bad_shapes_rejected(self):
        with pytest.raises(LintConfigError, match="table"):
            LintConfig.from_dict({"RPR001": "nope"})
        with pytest.raises(LintConfigError, match="select"):
            LintConfig.from_dict({"select": "RPR001"})
        with pytest.raises(LintConfigError, match="exclude"):
            LintConfig.from_dict({"exclude": "generated/"})

    def test_pyproject_discovery_matches_defaults(self):
        """The checked-in table documents (and reproduces) the defaults:
        both configurations produce identical results on src/."""
        discovered = LintConfig.discover(root=REPO_ROOT)
        assert discovered.exclude == ["tests/fixtures/lint/"]
        with_table = Linter(config=discovered, root=REPO_ROOT).run(["src"])
        with_defaults = Linter(config=LintConfig(),
                               root=REPO_ROOT).run(["src"])
        assert with_table.findings == with_defaults.findings
        assert with_table.suppressed == with_defaults.suppressed

    def test_severity_override_downgrades(self):
        bad, _ = FIXTURE_PAIRS["RPR001"]
        config = LintConfig(rules={"RPR001": {"severity": "warning"}})
        result = run_lint([bad], config=config)
        rpr001 = [f for f in result.findings if f.rule == "RPR001"]
        assert rpr001 and all(f.severity == "warning" for f in rpr001)
        assert result.ok

    def test_enabled_false_drops_rule(self):
        bad, _ = FIXTURE_PAIRS["RPR001"]
        config = LintConfig(rules={"RPR001": {"enabled": False}})
        assert "RPR001" not in rules_hit(run_lint([bad], config=config))

    def test_select_unknown_rule_rejected(self):
        with pytest.raises(LintConfigError, match="RPR042"):
            Linter(config=LintConfig(select=["RPR042"]), root=REPO_ROOT)

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint(["no/such/path"])


class TestFindings:
    def test_render_and_to_dict(self):
        finding = Finding(path="a.py", line=3, col=4, rule="RPR001",
                          severity="error", message="boom")
        assert finding.render() == "a.py:3:4 RPR001 error: boom"
        assert finding.to_dict() == {"path": "a.py", "line": 3, "col": 4,
                                     "rule": "RPR001",
                                     "severity": "error",
                                     "message": "boom"}

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(path="a.py", line=1, col=0, rule="RPR001",
                    severity="fatal", message="boom")

    def test_findings_sort_by_location(self):
        bad, _ = FIXTURE_PAIRS["RPR001"]
        result = run_lint([bad])
        locations = [(f.path, f.line, f.col) for f in result.findings]
        assert locations == sorted(locations)


class TestMatchPath:
    def test_exact_prefix_and_glob(self):
        assert match_path("src/repro/kernels/reference.py",
                          ["*/kernels/reference.py"])
        assert match_path("tests/fixtures/lint/x.py",
                          ["tests/fixtures/lint/"])
        assert match_path("benchmarks/bench_kernels.py", ["benchmarks/"])
        assert not match_path("src/repro/kernels/fast.py",
                              ["*/kernels/reference.py"])


class TestCli:
    def lint(self, capsys, *argv):
        code = cli_main(["lint", "--root", REPO_ROOT, *argv])
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_clean_run_exits_zero(self, capsys):
        code, out, _ = self.lint(capsys, "src")
        assert code == 0
        assert "0 error(s)" in out and "1 suppressed" in out

    def test_findings_exit_one(self, capsys):
        bad, _ = FIXTURE_PAIRS["RPR001"]
        code, out, _ = self.lint(capsys, bad)
        assert code == 1
        assert "RPR001" in out

    def test_warn_only_exits_zero(self, capsys):
        bad, _ = FIXTURE_PAIRS["RPR001"]
        code, _, _ = self.lint(capsys, "--warn-only", bad)
        assert code == 0

    def test_json_payload(self, capsys):
        bad, _ = FIXTURE_PAIRS["RPR001"]
        code, out, _ = self.lint(capsys, "--json", "--select", "RPR001",
                                 bad)
        assert code == 1
        payload = json.loads(out)
        assert payload["format"] == "repro-lint/1"
        assert payload["files"] == 1
        assert payload["errors"] == 5
        assert payload["warnings"] == 0
        assert payload["suppressed"] == 0
        for row in payload["findings"]:
            assert set(row) == {"path", "line", "col", "rule",
                                "severity", "message"}
            assert row["rule"] == "RPR001"

    def test_select_narrows_rules(self, capsys):
        bad, _ = FIXTURE_PAIRS["RPR005"]  # trips RPR001 and RPR005
        code, out, _ = self.lint(capsys, "--json", "--select", "RPR005",
                                 bad)
        payload = json.loads(out)
        assert {row["rule"] for row in payload["findings"]} == {"RPR005"}

    def test_unknown_select_exits_two(self, capsys):
        code, _, err = self.lint(capsys, "--select", "RPR042", "src")
        assert code == 2
        assert "RPR042" in err

    def test_missing_path_exits_two(self, capsys):
        code, _, err = self.lint(capsys, "no/such/path")
        assert code == 2
        assert "no/such/path" in err

    def test_rules_listing(self, capsys):
        code, out, _ = self.lint(capsys, "--rules")
        assert code == 0
        for rule_id, rule in all_rules().items():
            assert rule_id in out
            assert rule.title in out
