"""Run the doctests embedded in the library's docstrings."""

import doctest

import pytest

import repro.analysis.quartets
import repro.asm.alphabet
import repro.asm.constraints
import repro.asm.decompose
import repro.asm.man
import repro.datasets.digits
import repro.datasets.registry
import repro.fixedpoint.binary
import repro.fixedpoint.qformat
import repro.fixedpoint.quartet
import repro.hardware.engine
import repro.hardware.neuron
import repro.hardware.precompute
import repro.hardware.report
import repro.nn.activations
import repro.rtl.generator

MODULES = [
    repro.fixedpoint.binary,
    repro.fixedpoint.qformat,
    repro.fixedpoint.quartet,
    repro.asm.alphabet,
    repro.asm.decompose,
    repro.asm.constraints,
    repro.asm.man,
    repro.hardware.precompute,
    repro.hardware.engine,
    repro.hardware.neuron,
    repro.hardware.report,
    repro.nn.activations,
    repro.datasets.digits,
    repro.datasets.registry,
    repro.analysis.quartets,
    repro.rtl.generator,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    failures, tested = doctest.testmod(module)
    assert failures == 0
    assert tested > 0  # every listed module carries at least one example
