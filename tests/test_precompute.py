"""Tests for CSD decomposition and the pre-computer bank model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, FULL_ALPHABETS
from repro.hardware.precompute import (
    PrecomputeBank,
    csd_adder_count,
    csd_digits,
)
from repro.hardware.technology import IBM45


class TestCSD:
    @pytest.mark.parametrize("value,expected", [
        (0, 0), (1, 1), (2, 1), (3, 2), (4, 1), (5, 2), (6, 2), (7, 2),
        (8, 1), (9, 2), (11, 3), (13, 3), (15, 2), (16, 1), (21, 3),
    ])
    def test_known_digit_counts(self, value, expected):
        assert csd_digits(value) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            csd_digits(-1)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_csd_at_most_binary_weight(self, value):
        assert csd_digits(value) <= bin(value).count("1")

    @given(st.integers(min_value=1, max_value=10**6))
    def test_csd_minimal_weight_bound(self, value):
        # canonical form uses at most ceil(bits/2)+... loose sanity bound
        assert csd_digits(value) <= value.bit_length() // 2 + 1

    def test_adder_counts_for_alphabets(self):
        assert [csd_adder_count(a) for a in (1, 3, 5, 7, 9, 11, 13, 15)] == \
            [0, 1, 1, 1, 1, 2, 2, 1]


class TestPrecomputeBank:
    def test_man_bank_is_empty(self):
        bank = PrecomputeBank(IBM45, 8, ALPHA_1, share_units=4,
                              period_ps=333, bus_length_um=120)
        assert bank.is_empty
        assert bank.area_um2 == 0.0
        assert bank.num_adders == 0

    def test_alpha2_bank_single_adder(self):
        bank = PrecomputeBank(IBM45, 8, ALPHA_2, share_units=4,
                              period_ps=333, bus_length_um=120)
        assert not bank.is_empty
        assert bank.num_adders == 1

    def test_alpha4_bank_three_adders(self):
        bank = PrecomputeBank(IBM45, 8, ALPHA_4, share_units=4,
                              period_ps=333, bus_length_um=120)
        assert bank.num_adders == 3  # 3I, 5I, 7I each one adder

    def test_full_bank_adder_count(self):
        bank = PrecomputeBank(IBM45, 8, FULL_ALPHABETS, share_units=4,
                              period_ps=333, bus_length_um=120)
        # 3,5,7,9,15 -> 1 adder each; 11,13 -> 2 each
        assert bank.num_adders == 5 + 4

    def test_area_grows_with_alphabets(self):
        kwargs = dict(share_units=4, period_ps=333, bus_length_um=120)
        a2 = PrecomputeBank(IBM45, 8, ALPHA_2, **kwargs).area_um2
        a4 = PrecomputeBank(IBM45, 8, ALPHA_4, **kwargs).area_um2
        a8 = PrecomputeBank(IBM45, 8, FULL_ALPHABETS, **kwargs).area_um2
        assert 0 < a2 < a4 < a8

    def test_bus_disabled_with_zero_length(self):
        with_bus = PrecomputeBank(IBM45, 8, ALPHA_2, share_units=4,
                                  period_ps=333, bus_length_um=120)
        without = PrecomputeBank(IBM45, 8, ALPHA_2, share_units=4,
                                 period_ps=333, bus_length_um=0)
        assert without.area_um2 < with_bus.area_um2

    def test_wider_words_cost_more(self):
        kwargs = dict(share_units=4, period_ps=400, bus_length_um=120)
        b8 = PrecomputeBank(IBM45, 8, ALPHA_4, **kwargs).area_um2
        b12 = PrecomputeBank(IBM45, 12, ALPHA_4, **kwargs).area_um2
        assert b12 > b8
