"""Cross-module integration tests: the full pipeline on small instances.

These exercise the complete chain the paper describes — train, constrain,
retrain, deploy on the bit-accurate ASM engine, cost on the hardware model —
and assert the paper's qualitative claims hold end to end.
"""

import numpy as np
import pytest

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4
from repro.asm.constraints import WeightConstrainer
from repro.datasets import build_model, load_dataset, synthetic_mnist
from repro.hardware.engine import ProcessingEngine
from repro.nn.optim import SGD
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.nn.trainer import Trainer
from repro.training.constrained import ConstraintProjector, constrained_trainer
from repro.training.methodology import DesignMethodology


@pytest.fixture(scope="module")
def mnist_small():
    return synthetic_mnist(n_train=500, n_test=250, seed=0)


@pytest.fixture(scope="module")
def trained(mnist_small):
    from repro.datasets import mlp
    model = mlp([1024, 48, 10], seed=2)
    trainer = Trainer(model, SGD(model, 0.3), batch_size=32, patience=2)
    trainer.fit(mnist_small.flat_train, mnist_small.y_train_onehot,
                mnist_small.flat_test, mnist_small.y_test, max_epochs=10)
    return model


class TestEndToEndPipeline:
    def test_train_constrain_deploy_chain(self, mnist_small, trained):
        """The full paper pipeline on one network and alphabet set."""
        model = trained
        baseline = QuantizedNetwork.from_float(
            model, QuantizationSpec(8)).accuracy(
            mnist_small.flat_test, mnist_small.y_test)

        state = model.state()
        projector = ConstraintProjector(model, 8, ALPHA_1)
        trainer = constrained_trainer(model, SGD(model, 0.075), projector,
                                      batch_size=32, patience=2)
        trainer.fit(mnist_small.flat_train, mnist_small.y_train_onehot,
                    mnist_small.flat_test, mnist_small.y_test, max_epochs=6)
        man_acc = QuantizedNetwork.from_float(
            model, QuantizationSpec(
                8, ALPHA_1,
                constrainer=WeightConstrainer(8, ALPHA_1)),
        ).accuracy(mnist_small.flat_test, mnist_small.y_test)
        model.load_state(state)

        # the paper's claim: minimal degradation after retraining
        assert man_acc >= baseline - 0.08

        # and a real hardware payoff at iso-speed
        topo = model.topology()
        conv_energy = ProcessingEngine(8, None).run(topo).energy_nj
        man_energy = ProcessingEngine(8, ALPHA_1).run(topo).energy_nj
        assert man_energy < 0.75 * conv_energy

    def test_methodology_on_benchmark_model(self, mnist_small):
        """Algorithm 2 drives a Table IV model to an accepted design."""
        from repro.datasets import mlp
        model = mlp([1024, 32, 10], seed=3)
        methodology = DesignMethodology(bits=8, quality=0.95,
                                        ladder=(1, 2, 4, 8))
        result = methodology.run(model, mnist_small, max_epochs=8,
                                 retrain_epochs=5)
        assert result.succeeded
        # quality bound respected by construction
        final = result.final_stage
        assert final.accuracy >= result.baseline_accuracy * 0.95

    def test_registered_benchmark_roundtrip(self):
        """Registry model + dataset + engine cost agree on shapes."""
        data = load_dataset("tich", n_train=72, n_test=36, seed=0)
        model = build_model("tich", seed=0)
        out = model.forward(data.flat_test, training=False)
        assert out.shape == (36, 36)
        report = ProcessingEngine(8, ALPHA_2).run(model.topology())
        assert report.total_macs == model.num_params - model.num_neurons

    def test_cnn_pipeline(self):
        """LeNet trains, quantises to 12-bit MAN, and costs on the engine."""
        data = synthetic_mnist(n_train=200, n_test=80, seed=1)
        model = build_model("mnist_cnn", seed=1)
        trainer = Trainer(model, SGD(model, 0.1), batch_size=16, patience=2)
        trainer.fit(data.x_train, data.y_train_onehot, data.x_test,
                    data.y_test, max_epochs=3)
        projector = ConstraintProjector(model, 12, ALPHA_1)
        retrainer = constrained_trainer(model, SGD(model, 0.025), projector,
                                        batch_size=16, patience=2)
        retrainer.fit(data.x_train, data.y_train_onehot, data.x_test,
                      data.y_test, max_epochs=2)
        q = QuantizedNetwork.from_float(
            model, QuantizationSpec(
                12, ALPHA_1, constrainer=WeightConstrainer(12, ALPHA_1)))
        acc = q.accuracy(data.x_test, data.y_test)
        assert acc > 0.3  # trained well above chance through the MAN engine
        report = ProcessingEngine(12, ALPHA_1).run(model.topology())
        assert report.total_macs > 0


class TestPaperInvariantsEndToEnd:
    def test_effective_weights_equal_datapath_on_network(self, trained,
                                                         mnist_small):
        """A whole network's ASM scores equal per-weight datapath results."""
        from repro.asm.multiplier import AlphabetSetMultiplier
        spec = QuantizationSpec(8, ALPHA_4, fallback="nearest")
        q = QuantizedNetwork.from_float(trained, spec)
        layer = q.weight_layers[0]
        m = AlphabetSetMultiplier(8, ALPHA_4, fallback="nearest")
        x_int = q.act_fmt.quantize_array(mnist_small.flat_test[:2])
        acc_fast = x_int @ layer.w_int
        acc_slow = np.zeros_like(acc_fast)
        for j in range(4):  # spot-check a few output neurons bit-level
            for s in range(2):
                acc_slow[s, j] = sum(
                    m.multiply(int(layer.w_int[i, j]), int(x_int[s, i]))
                    for i in range(x_int.shape[1]))
        np.testing.assert_array_equal(acc_fast[:, :4], acc_slow[:, :4])

    def test_energy_accuracy_tradeoff_curve(self, trained, mnist_small):
        """Fewer alphabets: monotonically less energy; accuracy stays in a
        narrow band after constraining (no retraining here, nearest
        fallback — the weak deployment)."""
        topo = trained.topology()
        energies = []
        accuracies = []
        for aset in (ALPHA_4, ALPHA_2, ALPHA_1):
            energies.append(ProcessingEngine(8, aset).run(topo).energy_nj)
            q = QuantizedNetwork.from_float(
                trained, QuantizationSpec(8, aset, fallback="nearest"))
            accuracies.append(q.accuracy(mnist_small.flat_test,
                                         mnist_small.y_test))
        assert energies[0] > energies[1] > energies[2]
        assert min(accuracies) > 0.2  # degraded but functional
