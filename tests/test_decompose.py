"""Tests for quartet decomposition — anchored on the paper's Table I."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.alphabet import (
    ALPHA_1,
    ALPHA_2,
    ALPHA_4,
    FULL_ALPHABETS,
    AlphabetSet,
)
from repro.asm.decompose import (
    QuartetTerm,
    UnsupportedQuartetError,
    decompose_magnitude,
    decompose_quartet,
    format_decomposition,
    reconstruct,
)
from repro.fixedpoint.quartet import LAYOUT_8BIT, LAYOUT_12BIT


class TestDecomposeQuartet:
    def test_zero_is_none(self):
        assert decompose_quartet(0, ALPHA_4) is None

    def test_alphabet_itself(self):
        assert decompose_quartet(5, ALPHA_4) == (5, 0)

    def test_shifted_alphabet(self):
        assert decompose_quartet(10, ALPHA_4) == (5, 1)
        assert decompose_quartet(12, ALPHA_4) == (3, 2)

    def test_power_of_two(self):
        assert decompose_quartet(8, ALPHA_1) == (1, 3)

    def test_unsupported_raises(self):
        with pytest.raises(UnsupportedQuartetError):
            decompose_quartet(9, ALPHA_4)

    def test_unsupported_error_payload(self):
        with pytest.raises(UnsupportedQuartetError) as excinfo:
            decompose_quartet(7, ALPHA_2)
        assert excinfo.value.value == 7
        assert excinfo.value.alphabet_set is ALPHA_2

    def test_out_of_width(self):
        with pytest.raises(ValueError):
            decompose_quartet(16, ALPHA_4)

    def test_narrow_width(self):
        assert decompose_quartet(6, ALPHA_2, width=3) == (3, 1)
        with pytest.raises(UnsupportedQuartetError):
            decompose_quartet(5, ALPHA_2, width=3)

    @given(st.integers(min_value=1, max_value=15))
    def test_full_set_always_decomposes(self, value):
        alphabet, shift = decompose_quartet(value, FULL_ALPHABETS)
        assert alphabet << shift == value
        assert alphabet % 2 == 1


class TestDecomposeMagnitude:
    def test_paper_table1_w1(self):
        # W1 = 105: quartets R=9 (alphabet 9, shift 0), P=6 (alphabet 3,
        # shifted once, at bit offset 4 -> total shift 5)
        terms = decompose_magnitude(105, LAYOUT_8BIT, FULL_ALPHABETS)
        assert [(t.alphabet, t.shift) for t in terms] == [(9, 0), (3, 5)]

    def test_paper_table1_w2(self):
        # W2 = 66: 2^6 . 0001 + 2^1 . 0001
        terms = decompose_magnitude(66, LAYOUT_8BIT, FULL_ALPHABETS)
        assert [(t.alphabet, t.shift) for t in terms] == [(1, 1), (1, 6)]

    def test_paper_fig2_example(self):
        # Fig. 2: W = 01001010 -> 10M = 5M<<1 and 4M<<4 = (1M<<2)<<4
        terms = decompose_magnitude(0b1001010, LAYOUT_8BIT, ALPHA_4)
        assert [(t.alphabet, t.shift) for t in terms] == [(5, 1), (1, 6)]

    def test_zero_weight(self):
        assert decompose_magnitude(0, LAYOUT_8BIT, ALPHA_1) == []

    def test_single_quartet(self):
        terms = decompose_magnitude(7, LAYOUT_8BIT, ALPHA_4)
        assert len(terms) == 1
        assert terms[0].quartet_index == 0

    def test_term_value_property(self):
        term = QuartetTerm(quartet_index=1, alphabet=3, shift=5)
        assert term.value == 96

    def test_unsupported_quartet_raises(self):
        with pytest.raises(UnsupportedQuartetError):
            decompose_magnitude(9, LAYOUT_8BIT, ALPHA_4)

    @given(st.integers(min_value=0, max_value=127))
    def test_reconstruct_8bit_full_set(self, magnitude):
        terms = decompose_magnitude(magnitude, LAYOUT_8BIT, FULL_ALPHABETS)
        assert reconstruct(terms) == magnitude

    @given(st.integers(min_value=0, max_value=2047))
    def test_reconstruct_12bit_full_set(self, magnitude):
        terms = decompose_magnitude(magnitude, LAYOUT_12BIT, FULL_ALPHABETS)
        assert reconstruct(terms) == magnitude

    @given(st.integers(min_value=0, max_value=2047))
    def test_terms_use_available_alphabets_only(self, magnitude):
        terms = decompose_magnitude(magnitude, LAYOUT_12BIT, FULL_ALPHABETS)
        for term in terms:
            assert term.alphabet in FULL_ALPHABETS

    @given(st.integers(min_value=0, max_value=127))
    def test_at_most_one_term_per_quartet(self, magnitude):
        terms = decompose_magnitude(magnitude, LAYOUT_8BIT, FULL_ALPHABETS)
        indices = [t.quartet_index for t in terms]
        assert len(indices) == len(set(indices))


class TestFormatDecomposition:
    def test_paper_table1_row1(self):
        assert format_decomposition(105, LAYOUT_8BIT, FULL_ALPHABETS) == \
            "W x I = 2^5.(0011).I + 2^0.(1001).I"

    def test_paper_table1_row2(self):
        assert format_decomposition(66, LAYOUT_8BIT, FULL_ALPHABETS) == \
            "W x I = 2^6.(0001).I + 2^1.(0001).I"

    def test_zero(self):
        assert format_decomposition(0, LAYOUT_8BIT, ALPHA_1) == "W x I = 0"

    def test_custom_symbol(self):
        out = format_decomposition(66, LAYOUT_8BIT, FULL_ALPHABETS, symbol="M")
        assert out.endswith(".M") and " x M = " in out

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_decomposition(-1, LAYOUT_8BIT, ALPHA_1)


@st.composite
def supported_magnitudes(draw, layout, aset):
    """Magnitudes whose quartets are all supported by *aset*."""
    quartets = []
    for width in layout.quartet_widths:
        quartets.append(draw(st.sampled_from(
            sorted(aset.supported_values(width)))))
    return layout.join(quartets)


class TestReducedSetProperties:
    @given(supported_magnitudes(LAYOUT_12BIT, ALPHA_2))
    def test_supported_weight_decomposes_exactly(self, magnitude):
        terms = decompose_magnitude(magnitude, LAYOUT_12BIT, ALPHA_2)
        assert reconstruct(terms) == magnitude

    @given(supported_magnitudes(LAYOUT_8BIT, ALPHA_1))
    def test_man_terms_are_shifts_of_input(self, magnitude):
        terms = decompose_magnitude(magnitude, LAYOUT_8BIT, ALPHA_1)
        assert all(t.alphabet == 1 for t in terms)

    @given(st.integers(min_value=0, max_value=127))
    def test_alpha2_subset_of_alpha4_failures(self, magnitude):
        """Whatever ALPHA_4 can decompose exactly includes ALPHA_2's set."""
        try:
            decompose_magnitude(magnitude, LAYOUT_8BIT, ALPHA_2)
            alpha2_ok = True
        except UnsupportedQuartetError:
            alpha2_ok = False
        if alpha2_ok:
            # must also work with the larger set
            decompose_magnitude(magnitude, LAYOUT_8BIT, ALPHA_4)
