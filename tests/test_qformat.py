"""Unit and property tests for Q-format fixed-point quantisation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fixedpoint.qformat import QFormat, qformat_for_range


class TestQFormatBasics:
    def test_resolution_q1_7(self):
        assert QFormat(8, 7).resolution == pytest.approx(1 / 128)

    def test_int_bits(self):
        assert QFormat(8, 7).int_bits == 0
        assert QFormat(12, 8).int_bits == 3

    def test_range_q1_7(self):
        q = QFormat(8, 7)
        assert q.min_value == pytest.approx(-1.0)
        assert q.max_value == pytest.approx(127 / 128)

    def test_max_magnitude(self):
        assert QFormat(8, 7).max_magnitude == 127
        assert QFormat(12, 11).max_magnitude == 2047

    def test_negative_frac_bits_allowed(self):
        q = QFormat(8, -2)
        assert q.resolution == 4.0
        assert q.quantize(9.0) == 2  # 9/4 -> 2.25 -> 2

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            QFormat(1, 0)

    def test_str(self):
        assert str(QFormat(8, 7)) == "Q0.7"


class TestQuantizeScalar:
    def test_exact_value(self):
        assert QFormat(8, 7).quantize(0.5) == 64

    def test_round_half_away_positive(self):
        # 0.5 LSB rounds away from zero
        q = QFormat(8, 0)
        assert q.quantize(2.5) == 3

    def test_round_half_away_negative(self):
        q = QFormat(8, 0)
        assert q.quantize(-2.5) == -3

    def test_saturates_high(self):
        assert QFormat(8, 7).quantize(10.0) == 127

    def test_saturates_low(self):
        assert QFormat(8, 7).quantize(-10.0) == -128

    def test_zero(self):
        assert QFormat(8, 7).quantize(0.0) == 0


class TestToFloat:
    def test_inverse_on_grid(self):
        q = QFormat(8, 7)
        assert q.to_float(64) == pytest.approx(0.5)

    def test_rejects_out_of_range_code(self):
        with pytest.raises(OverflowError):
            QFormat(8, 7).to_float(128)

    @given(st.integers(min_value=-128, max_value=127))
    def test_roundtrip_codes(self, code):
        q = QFormat(8, 5)
        assert q.quantize(q.to_float(code)) == code


class TestQuantizeArray:
    def test_matches_scalar(self):
        q = QFormat(8, 7)
        values = np.array([-2.0, -0.503, 0.0, 0.251, 0.999, 3.0])
        expected = np.array([q.quantize(v) for v in values])
        np.testing.assert_array_equal(q.quantize_array(values), expected)

    def test_dtype_is_int64(self):
        assert QFormat(8, 7).quantize_array(np.zeros(3)).dtype == np.int64

    def test_to_float_array_roundtrip(self):
        q = QFormat(12, 9)
        codes = np.arange(-2048, 2048)
        np.testing.assert_array_equal(
            q.quantize_array(q.to_float_array(codes)), codes)

    def test_to_float_array_rejects_overflow(self):
        with pytest.raises(OverflowError):
            QFormat(8, 7).to_float_array(np.array([300]))

    @given(arrays(np.float64, (17,),
                  elements=st.floats(-4, 4, allow_nan=False)))
    def test_array_scalar_agreement(self, values):
        q = QFormat(8, 5)
        expected = np.array([q.quantize(v) for v in values])
        np.testing.assert_array_equal(q.quantize_array(values), expected)

    @given(arrays(np.float64, (11,),
                  elements=st.floats(-100, 100, allow_nan=False)))
    def test_quantisation_error_bounded(self, values):
        """On-range values quantise with error at most half an LSB."""
        q = QFormat(12, 6)
        in_range = np.clip(values, q.min_value, q.max_value)
        codes = q.quantize_array(in_range)
        recovered = q.to_float_array(codes)
        assert np.all(np.abs(recovered - in_range) <= q.resolution / 2 + 1e-12)


class TestQFormatForRange:
    def test_unit_range(self):
        assert qformat_for_range(8, 0.9) == QFormat(8, 7)

    def test_wider_range_drops_frac_bits(self):
        assert qformat_for_range(8, 3.5) == QFormat(8, 5)

    def test_exact_power_of_two_boundary(self):
        # max_abs exactly at the old limit must still fit
        q = qformat_for_range(8, 127 / 128)
        assert q.frac_bits == 7

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            qformat_for_range(8, 0.0)

    @given(st.floats(min_value=1e-3, max_value=1e3))
    def test_chosen_format_covers_range(self, max_abs):
        q = qformat_for_range(12, max_abs)
        assert q.max_value >= max_abs
        # one more frac bit would overflow
        finer = QFormat(12, q.frac_bits + 1)
        assert finer.max_value < max_abs
