"""Integration tests for the experiment drivers (tiny budgets)."""

import numpy as np
import pytest

from repro.experiments.accuracy import (
    AccuracyGrid,
    format_accuracy_table,
    run_accuracy_grid,
)
from repro.experiments.config import QUICK, Budget, budget
from repro.experiments.energy import FIGURE9_GROUPS, run_figure9
from repro.experiments.power_area import (
    PAPER_VALUES,
    run_figure8,
    run_figure10,
)
from repro.experiments.tables import table1_rows, table4_rows, table5_rows

TINY = Budget("tiny", n_train=250, n_test=120, max_epochs=3,
              retrain_epochs=2)


class TestConfig:
    def test_budget_selector(self):
        assert budget(False).name == "quick"
        assert budget(True).name == "full"

    def test_quick_budget_small(self):
        assert QUICK.n_train < 1000


class TestTables:
    def test_table1_contains_paper_rows(self):
        rows = table1_rows()
        assert "2^5.(0011).I + 2^0.(1001).I" in rows[0][1]
        assert "2^6.(0001).I + 2^1.(0001).I" in rows[1][1]

    def test_table4_verifies_counts(self):
        rows = table4_rows(verify=True)
        assert len(rows) == 5

    def test_table5_clocks(self):
        rows = dict(table5_rows())
        assert rows["Clock Frequency for 8 bits Neuron"] == "3 GHz"
        assert rows["Clock Frequency for 12 bits Neuron"] == "2.5 GHz"


class TestHardwareFigures:
    def test_fig8_rows_complete(self):
        rows = run_figure8()
        keys = {(r.bits, r.num_alphabets) for r in rows}
        assert keys == {(b, a) for b in (8, 12)
                        for a in (None, 4, 2, 1)}

    def test_fig8_paper_values_attached(self):
        rows = run_figure8()
        by_key = {(r.bits, r.num_alphabets): r for r in rows}
        assert by_key[(8, 1)].paper == PAPER_VALUES[(8, 1, "power")]

    def test_fig10_normalized_baseline_is_one(self):
        for row in run_figure10():
            if row.num_alphabets is None:
                assert row.normalized == 1.0

    def test_bad_metric(self):
        from repro.experiments.power_area import run_hardware_grid
        with pytest.raises(ValueError):
            run_hardware_grid("latency")


class TestFig9:
    def test_all_groups_covered(self):
        rows = run_figure9()
        assert {row.group for row in rows} == set(FIGURE9_GROUPS)

    def test_four_designs_per_app(self):
        rows = run_figure9()
        apps = {row.app for row in rows}
        for app in apps:
            assert sum(1 for r in rows if r.app == app) == 4

    def test_normalization_consistent(self):
        rows = run_figure9()
        for row in rows:
            if row.design == "conventional":
                assert row.normalized == pytest.approx(1.0)
            else:
                assert row.normalized < 1.0


class TestAccuracyGrid:
    @pytest.fixture(scope="class")
    def face_grid(self):
        return run_accuracy_grid("face", budget_override=TINY, seed=0)

    def test_row_structure(self, face_grid):
        assert isinstance(face_grid, AccuracyGrid)
        assert [r.num_alphabets for r in face_grid.rows] == [None, 4, 2, 1]

    def test_baseline_loss_zero(self, face_grid):
        assert face_grid.baseline.loss == 0.0

    def test_row_lookup(self, face_grid):
        assert face_grid.row_for(2).num_alphabets == 2
        with pytest.raises(KeyError):
            face_grid.row_for(3)

    def test_accuracies_valid(self, face_grid):
        for row in face_grid.rows:
            assert 0.0 <= row.accuracy <= 1.0

    def test_losses_consistent(self, face_grid):
        for row in face_grid.rows[1:]:
            assert row.loss == pytest.approx(
                face_grid.baseline.accuracy - row.accuracy)

    def test_format_table(self, face_grid):
        text = format_accuracy_table(face_grid, "demo")
        assert "conventional NN" in text
        assert "1 {1}" in text

    def test_custom_bits_override(self):
        grid = run_accuracy_grid("face", bits=8, budget_override=TINY,
                                 alphabet_counts=(1,), seed=0)
        assert grid.bits == 8
        assert len(grid.rows) == 2


class TestRunnerEntryPoints:
    def test_run_experiment_table1(self):
        from repro.experiments.runner import run_experiment
        text, _ = run_experiment("table1")
        assert "1001" in text

    def test_run_experiment_unknown(self):
        from repro.experiments.runner import run_experiment
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_runner_list(self, capsys):
        from repro.experiments.runner import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table4" in out

    def test_runner_single_experiment(self, capsys):
        from repro.experiments.runner import main
        assert main(["--experiment", "table5"]) == 0
        assert "45nm" in capsys.readouterr().out

    def test_runner_json_output(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.runner import main
        monkeypatch.chdir(tmp_path)
        assert main(["--experiment", "fig8", "--json"]) == 0
        assert (tmp_path / "results" / "fig8.json").exists()
