"""Tests for shift-add programs and the Multiplier-less Neuron facade."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, FULL_ALPHABETS
from repro.asm.constraints import WeightConstrainer, representable_magnitudes
from repro.asm.decompose import UnsupportedQuartetError
from repro.asm.man import MANMultiplier, compile_weight, man_program
from repro.fixedpoint.quartet import LAYOUT_8BIT, LAYOUT_12BIT


class TestCompileWeight:
    def test_simple_power_of_two(self):
        program = compile_weight(64, LAYOUT_8BIT, ALPHA_1)
        assert str(program) == "(x << 6)"
        assert program.num_terms == 1
        assert program.num_adds == 0

    def test_two_term_program(self):
        program = compile_weight(68, LAYOUT_8BIT, ALPHA_1)
        assert str(program) == "(x << 6) + (x << 2)"
        assert program.num_adds == 1
        assert program.num_shifts == 2

    def test_zero_weight(self):
        program = compile_weight(0, LAYOUT_8BIT, ALPHA_1)
        assert str(program) == "0"
        assert program.apply(123) == 0

    def test_negative_weight(self):
        program = compile_weight(-68, LAYOUT_8BIT, ALPHA_1)
        assert program.sign == -1
        assert str(program).startswith("-(")
        assert program.apply(3) == -204

    def test_alphabet_term_rendering(self):
        program = compile_weight(3, LAYOUT_8BIT, ALPHA_2)
        assert str(program) == "3x"

    def test_shifted_alphabet_rendering(self):
        program = compile_weight(96, LAYOUT_8BIT, ALPHA_2)  # P=6 -> 3<<5
        assert str(program) == "(3x << 5)"

    def test_unsupported_weight_raises(self):
        with pytest.raises(UnsupportedQuartetError):
            compile_weight(9, LAYOUT_8BIT, ALPHA_4)

    def test_uses_only_input_flag(self):
        assert compile_weight(68, LAYOUT_8BIT, ALPHA_1).uses_only_input
        assert not compile_weight(3, LAYOUT_8BIT, ALPHA_2).uses_only_input


class TestProgramSemantics:
    @given(st.sampled_from(representable_magnitudes(LAYOUT_8BIT, ALPHA_1)),
           st.integers(min_value=-128, max_value=127))
    def test_man_program_equals_product_8bit(self, magnitude, operand):
        program = compile_weight(magnitude, LAYOUT_8BIT, ALPHA_1)
        assert program.apply(operand) == magnitude * operand

    @given(st.sampled_from(representable_magnitudes(LAYOUT_12BIT, ALPHA_2)),
           st.integers(min_value=-2048, max_value=2047))
    def test_alpha2_program_equals_product_12bit(self, magnitude, operand):
        program = compile_weight(magnitude, LAYOUT_12BIT, ALPHA_2)
        assert program.apply(operand) == magnitude * operand

    @given(st.sampled_from(representable_magnitudes(LAYOUT_8BIT, ALPHA_1)))
    def test_adds_bounded_by_quartets(self, magnitude):
        program = compile_weight(magnitude, LAYOUT_8BIT, ALPHA_1)
        assert program.num_adds <= LAYOUT_8BIT.num_quartets - 1

    @given(st.sampled_from(representable_magnitudes(LAYOUT_8BIT, ALPHA_1)),
           st.integers(min_value=-128, max_value=127))
    def test_negated_weight_negates_result(self, magnitude, operand):
        pos = compile_weight(magnitude, LAYOUT_8BIT, ALPHA_1)
        neg = compile_weight(-magnitude, LAYOUT_8BIT, ALPHA_1)
        assert neg.apply(operand) == -pos.apply(operand)


class TestManProgram:
    def test_accepts_man_representable(self):
        program = man_program(0b100_0100, LAYOUT_8BIT)
        assert program.uses_only_input

    def test_rejects_non_man_weight(self):
        with pytest.raises(UnsupportedQuartetError):
            man_program(3, LAYOUT_8BIT)


class TestMANMultiplier:
    def test_alphabet_set_is_one(self):
        assert MANMultiplier(8).alphabet_set is ALPHA_1

    def test_multiply_on_grid(self):
        man = MANMultiplier(8)
        c = WeightConstrainer(8, ALPHA_1)
        for w in range(-127, 128, 5):
            cw = c.constrain(w)
            assert man.multiply(cw, 9) == cw * 9

    def test_multiply_off_grid_raises(self):
        with pytest.raises(UnsupportedQuartetError):
            MANMultiplier(8).multiply(3, 9)

    def test_nearest_fallback(self):
        man = MANMultiplier(8, fallback="nearest")
        # weight 3 -> nearest MAN-supported quartet value under {1}
        assert man.multiply(3, 10) == man.effective_weight(3) * 10

    def test_program_roundtrip(self):
        man = MANMultiplier(8, fallback="nearest")
        for w in range(0, 128, 7):
            program = man.program(w)
            effective = man.effective_weight(w)
            assert program.apply(13) == effective * 13

    def test_multiply_array(self):
        import numpy as np
        man = MANMultiplier(8)
        c = WeightConstrainer(8, ALPHA_1)
        weights = c.constrain_array(np.arange(-127, 128))
        np.testing.assert_array_equal(
            man.multiply_array(weights, np.int64(4)), weights * 4)


class TestOperationCountsAcrossSets:
    """Smaller alphabet sets never need more adds per weight (same quartet
    count), and the MAN uses no multiplies at all — the premise of the
    energy claims."""

    def test_full_set_adds_bound(self):
        for magnitude in range(128):
            program = compile_weight(magnitude, LAYOUT_8BIT, FULL_ALPHABETS)
            assert program.num_adds <= 1  # two quartets -> at most one add

    def test_12bit_adds_bound(self):
        for magnitude in range(0, 2048, 17):
            program = compile_weight(magnitude, LAYOUT_12BIT, FULL_ALPHABETS)
            assert program.num_adds <= 2  # three quartets
