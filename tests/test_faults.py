"""Tests for repro.faults: deterministic fault models, the pipeline
``faults`` stage, resiliency reports, the chaos harness, and the
hardened explore executor (retry / quarantine / timeout / corrupt-record
healing / chaos bit-identity)."""

import glob
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.asm.alphabet import ALPHA_2
from repro.asm.constraints import WeightConstrainer
from repro.datasets.registry import mlp
from repro.explore import (
    FAILED_STATUS,
    ExplorationJournal,
    SearchSpace,
    run_candidates,
    run_exploration,
)
from repro.faults import (
    ChaosConfig,
    ChaosCrash,
    FaultModelError,
    FaultSpec,
    ResiliencyPoint,
    ResiliencyReport,
    fault_network,
    fault_session,
    faulted_accuracy,
    format_resiliency_report,
)
from repro.faults import chaos
from repro.faults.models import (
    fault_activation_array,
    fault_mask,
    fault_weight_array,
    element_hash,
    flip_bit,
    saturate_codes,
)
from repro.fixedpoint.binary import signed_range
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.pipeline import Pipeline, PipelineConfig, PipelineConfigError

RNG = np.random.default_rng(11)

TINY = {"name": "tiny", "n_train": 250, "n_test": 120,
        "max_epochs": 3, "retrain_epochs": 2}

FAULT_STAGES = ("train", "quantize", "constrain", "evaluate", "faults")


def make_quantized(backend: str = "reference") -> QuantizedNetwork:
    net = mlp([1024, 24, 10], seed=3, name="digits")
    spec = QuantizationSpec(8, ALPHA_2,
                            constrainer=WeightConstrainer(8, ALPHA_2))
    return QuantizedNetwork.from_float(net, spec, backend=backend)


def tiny_space(**overrides) -> SearchSpace:
    base = dict(app="face", designs=("conventional", "asm1"),
                budgets=(TINY,), seeds=(0,))
    base.update(overrides)
    return SearchSpace(**base)


def record_bytes(journal_dir: str) -> dict:
    out = {}
    for path in sorted(glob.glob(
            os.path.join(journal_dir, "records", "*.json"))):
        with open(path, "rb") as handle:
            out[os.path.basename(path)] = handle.read()
    return out


# ----------------------------------------------------------------------
# fault models
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultModelError, match="unknown fault kind"):
            FaultSpec(kind="cosmic_ray", rate=0.1)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultModelError, match="rate"):
            FaultSpec(kind="weight_bitflip", rate=1.5)
        with pytest.raises(FaultModelError, match="rate"):
            FaultSpec(kind="weight_bitflip", rate=-0.1)

    def test_round_trip(self):
        spec = FaultSpec(kind="activation_upset", rate=0.01, seed=5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultMechanics:
    def test_flip_bit_stays_in_range_and_involutes(self):
        codes = np.arange(-128, 128, dtype=np.int64)
        bits = RNG.integers(0, 8, size=codes.shape).astype(np.uint64)
        flipped = flip_bit(codes, bits, 8)
        low, high = signed_range(8)
        assert flipped.min() >= low and flipped.max() <= high
        assert np.array_equal(flip_bit(flipped, bits, 8), codes)
        assert not np.array_equal(flipped, codes)

    def test_saturate_follows_sign(self):
        low, high = signed_range(8)
        codes = np.array([-3, -1, 0, 2, 100], dtype=np.int64)
        assert saturate_codes(codes, 8).tolist() == \
            [low, low, high, high, high]

    def test_fault_mask_extremes_and_rate(self):
        hashes = element_hash(0, 0, np.arange(20000, dtype=np.uint64),
                              np.zeros(20000, dtype=np.int64))
        assert fault_mask(hashes, 0.0).sum() == 0
        assert fault_mask(hashes, 1.0).sum() == 20000
        frac = fault_mask(hashes, 0.5).mean()
        assert 0.45 < frac < 0.55      # splitmix64 is uniform enough

    def test_weight_fault_deterministic(self):
        w = RNG.integers(-100, 100, size=(64, 32)).astype(np.int64)
        spec = FaultSpec(kind="weight_bitflip", rate=0.05, seed=2)
        a, count_a = fault_weight_array(w, 8, spec, layer_index=0)
        b, count_b = fault_weight_array(w, 8, spec, layer_index=0)
        assert count_a == count_b > 0
        assert np.array_equal(a, b)
        # a different layer index faults different sites
        c, _ = fault_weight_array(w, 8, spec, layer_index=1)
        assert not np.array_equal(a, c)

    def test_weight_stuck_drives_zero(self):
        w = RNG.integers(1, 100, size=2048).astype(np.int64)  # no zeros
        spec = FaultSpec(kind="weight_stuck", rate=0.1, seed=0)
        faulted, count = fault_weight_array(w, 8, spec, layer_index=0)
        assert count > 0
        assert (faulted == 0).sum() == count

    def test_activation_faults_batch_split_invariant(self):
        codes = RNG.integers(-100, 100, size=(8, 50)).astype(np.int64)
        spec = FaultSpec(kind="activation_upset", rate=0.2, seed=1)
        whole, count = fault_activation_array(codes, 8, spec, 0)
        halves = np.concatenate([
            fault_activation_array(codes[:4], 8, spec, 0)[0],
            fault_activation_array(codes[4:], 8, spec, 0)[0]])
        assert count > 0
        assert np.array_equal(whole, halves)

    def test_zero_rate_returns_input_untouched(self):
        codes = RNG.integers(-10, 10, size=(4, 9)).astype(np.int64)
        spec = FaultSpec(kind="requantize_saturation", rate=0.0)
        faulted, count = fault_activation_array(codes, 8, spec, 0)
        assert count == 0
        assert faulted is codes

    def test_family_fences(self):
        w = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(FaultModelError, match="not a weight fault"):
            fault_weight_array(
                w, 8, FaultSpec("activation_upset", 0.1), 0)
        with pytest.raises(FaultModelError,
                           match="not an activation fault"):
            fault_activation_array(
                w, 8, FaultSpec("weight_bitflip", 0.1), 0)


class TestInjection:
    def test_weight_faults_leave_original_untouched(self):
        net = make_quantized()
        spec = FaultSpec(kind="weight_bitflip", rate=0.02, seed=0)
        before = [layer.w_int.copy() for layer in net.layers
                  if hasattr(layer, "w_int")]
        clone, injected = fault_network(net, spec)
        assert injected > 0
        after = [layer.w_int for layer in net.layers
                 if hasattr(layer, "w_int")]
        for a, b in zip(before, after):
            assert np.array_equal(a, b)
        x = RNG.uniform(-1.0, 1.0, size=(8, 1024))
        assert not np.array_equal(net.forward(x), clone.forward(x))

    @pytest.mark.parametrize("kind", ["weight_bitflip", "weight_stuck",
                                      "activation_upset",
                                      "requantize_saturation"])
    def test_backend_and_batch_size_invariant(self, kind):
        spec = FaultSpec(kind=kind, rate=0.05, seed=3)
        x = RNG.uniform(-1.0, 1.0, size=(64, 1024))
        labels = RNG.integers(0, 10, size=64)
        ref = make_quantized("reference")
        fast = make_quantized("fast")
        acc_ref, inj_ref = faulted_accuracy(ref, spec, x, labels,
                                            batch_size=64)
        acc_fast, inj_fast = faulted_accuracy(fast, spec, x, labels,
                                              batch_size=64)
        acc_small, inj_small = faulted_accuracy(ref, spec, x, labels,
                                                batch_size=16)
        assert acc_ref == acc_fast == acc_small
        assert inj_ref == inj_fast == inj_small > 0

    def test_session_forward_bit_identical_across_backends(self):
        spec = FaultSpec(kind="activation_upset", rate=0.1, seed=4)
        x = RNG.uniform(-1.0, 1.0, size=(16, 1024))
        ref = make_quantized("reference")
        fast = make_quantized("fast")
        with fault_session(spec, ref):
            scores_ref = ref.forward(x)
        with fault_session(spec, fast):
            scores_fast = fast.forward(x)
        assert np.array_equal(scores_ref, scores_fast)
        # and the hook is gone: clean forwards agree with each other
        assert np.array_equal(ref.forward(x), fast.forward(x))

    def test_session_rejects_weight_kinds(self):
        net = make_quantized()
        with pytest.raises(FaultModelError, match="activation fault"):
            with fault_session(FaultSpec("weight_stuck", 0.1), net):
                pass

    def test_zero_rate_equals_clean_accuracy(self):
        net = make_quantized()
        x = RNG.uniform(-1.0, 1.0, size=(32, 1024))
        labels = RNG.integers(0, 10, size=32)
        spec = FaultSpec(kind="activation_upset", rate=0.0)
        accuracy, injected = faulted_accuracy(net, spec, x, labels)
        assert injected == 0
        assert accuracy == net.accuracy(x, labels)


# ----------------------------------------------------------------------
# pipeline faults stage
# ----------------------------------------------------------------------
class TestFaultsStage:
    def test_faults_stage_requires_rates(self):
        with pytest.raises(PipelineConfigError, match="fault_rates"):
            PipelineConfig(app="face", stages=FAULT_STAGES, budget=TINY)

    def test_bad_fault_kind_rejected(self):
        with pytest.raises(PipelineConfigError, match="fault_kind"):
            PipelineConfig(app="face", budget=TINY,
                           fault_rates=(0.01,), fault_kind="nope")

    def test_duplicate_rates_rejected(self):
        with pytest.raises(PipelineConfigError, match="duplicate"):
            PipelineConfig(app="face", budget=TINY,
                           fault_rates=(0.01, 0.01))

    def test_stage_runs_and_caches(self, tmp_path):
        config = PipelineConfig(
            app="face", designs=("conventional", "asm2"),
            stages=FAULT_STAGES, budget=TINY,
            cache_dir=str(tmp_path / "cache"),
            fault_rates=(0.005, 0.05), fault_kind="activation_upset")
        report = Pipeline(config).run()
        faults = report.require("faults")
        assert len(faults.rows) == 4            # 2 designs x 2 rates
        for row in faults.rows:
            clean = report.require("evaluate").row_for(row.design).accuracy
            assert row.degradation == pytest.approx(clean - row.accuracy)
            assert row.injected > 0
        # second run resumes from the stage cache, bit-equal
        resumed = Pipeline(config).run()
        assert "faults" in resumed.cached_stages
        assert resumed.faults == report.faults

    def test_resiliency_report_from_pipeline(self, tmp_path):
        config = PipelineConfig(
            app="face", designs=("conventional", "asm2"),
            stages=FAULT_STAGES, budget=TINY,
            cache_dir=str(tmp_path / "cache"), fault_rates=(0.01,))
        resiliency = ResiliencyReport.from_pipeline_report(
            Pipeline(config).run())
        assert resiliency.app == "face"
        assert resiliency.designs == ("conventional", "asm2")
        assert set(resiliency.clean) == {"conventional", "asm2"}
        assert len(resiliency.points) == 2
        text = format_resiliency_report(resiliency)
        assert "Resiliency" in text and "asm2" in text


# ----------------------------------------------------------------------
# resiliency report arithmetic
# ----------------------------------------------------------------------
def hand_report() -> ResiliencyReport:
    return ResiliencyReport(
        app="face", bits=12, kind="activation_upset", seed=0,
        budget="tiny", rates=(0.01, 0.05),
        designs=("conventional", "asm2"),
        clean={"conventional": 0.98, "asm2": 0.97},
        points=(
            ResiliencyPoint("conventional", 0.01, 0.97, 0.01, 10),
            ResiliencyPoint("conventional", 0.05, 0.95, 0.03, 50),
            ResiliencyPoint("asm2", 0.01, 0.955, 0.015, 11),
            ResiliencyPoint("asm2", 0.05, 0.94, 0.03, 49),
        ))


class TestResiliencyReport:
    def test_round_trip(self):
        report = hand_report()
        assert ResiliencyReport.from_dict(report.to_dict()) == report

    def test_worst_excess_degradation(self):
        # asm2 at 0.01 degrades 0.015 vs conventional 0.01 -> +0.5pp;
        # at 0.05 both degrade 0.03 -> 0pp.  Worst is +0.5pp.
        assert hand_report().worst_excess_degradation_pp() == \
            pytest.approx(0.5)

    def test_min_clean_accuracy(self):
        assert hand_report().min_clean_accuracy() == pytest.approx(0.97)

    def test_curve_sorted_by_rate(self):
        curve = hand_report().curve("asm2")
        assert [p.rate for p in curve] == [0.01, 0.05]

    def test_bench_results_gate_metrics_are_top_level(self):
        results = hand_report().bench_results()
        assert results["min_clean_accuracy"] == pytest.approx(0.97)
        assert results["worst_excess_degradation_pp"] == \
            pytest.approx(0.5)
        assert set(results["curves"]) == {"conventional", "asm2"}


# ----------------------------------------------------------------------
# chaos harness
# ----------------------------------------------------------------------
class TestChaos:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="crash_rate"):
            ChaosConfig(crash_rate=1.5)
        with pytest.raises(ValueError, match="sum"):
            ChaosConfig(crash_rate=0.6, slow_rate=0.6)

    def test_curse_deterministic_and_banded(self):
        digest = "ab" * 32
        config = ChaosConfig(crash_rate=0.3, slow_rate=0.3,
                             io_fault_rate=0.3, seed=9)
        assert config.curse(digest) == config.curse(digest)
        assert ChaosConfig(crash_rate=1.0).curse(digest) == "crash"
        assert ChaosConfig().curse(digest) is None

    def test_maybe_strike_respects_max_attempt(self):
        digest = "cd" * 32
        chaos.install(ChaosConfig(crash_rate=1.0, max_attempt=1))
        try:
            with pytest.raises(ChaosCrash):
                chaos.maybe_strike(digest, attempt=0)
            chaos.maybe_strike(digest, attempt=1)    # retries succeed
        finally:
            chaos.uninstall()

    def test_env_var_activation(self, monkeypatch):
        config = ChaosConfig(io_fault_rate=1.0, seed=3)
        monkeypatch.setenv(chaos.ENV_VAR, json.dumps(config.to_dict()))
        assert chaos.active() == config
        monkeypatch.setenv(chaos.ENV_VAR, json.dumps({"bogus": 1}))
        with pytest.raises(ValueError, match="unknown chaos key"):
            chaos.active()

    def test_inactive_is_noop(self):
        chaos.maybe_strike("ef" * 32, attempt=0)


# ----------------------------------------------------------------------
# hardened executor
# ----------------------------------------------------------------------
class TestHardenedExecutor:
    def test_chaos_journal_bit_identical_to_fault_free(self, tmp_path,
                                                       monkeypatch):
        space = tiny_space()
        configs = space.grid()
        # pick a chaos seed (pure hash, so this search is instant) that
        # curses at least one candidate's first attempt
        for seed in range(200):
            config = ChaosConfig(crash_rate=0.5, seed=seed)
            cursed = sum(1 for c in configs
                         if config.curse(c.digest()) is not None)
            if cursed >= 1:
                break
        assert cursed >= 1
        clean_dir = str(tmp_path / "clean")
        clean = run_exploration(space, clean_dir, jobs=1)
        assert clean.failed == 0

        monkeypatch.setenv(chaos.ENV_VAR, json.dumps(config.to_dict()))
        chaotic_dir = str(tmp_path / "chaotic")
        chaotic = run_exploration(space, chaotic_dir, jobs=2)
        assert chaotic.failed == 0
        # every cursed first attempt retried and succeeded: the journal
        # is byte-identical to the fault-free run's
        assert record_bytes(chaotic_dir) == record_bytes(clean_dir)
        assert chaotic.to_dict()["records"] == clean.to_dict()["records"]

    def test_quarantine_and_resume_skip(self, tmp_path):
        space = tiny_space()
        configs = space.grid()
        journal = ExplorationJournal.open(str(tmp_path / "journal"),
                                          space)
        chaos.install(ChaosConfig(crash_rate=1.0, max_attempt=99))
        try:
            records, stats = run_candidates(
                configs, journal=journal, jobs=1, max_retries=1,
                backoff_s=0.001)
        finally:
            chaos.uninstall()
        assert stats["failed"] == len(configs)
        assert stats["retries"] == len(configs)          # 1 retry each
        for record in records:
            assert record["status"] == FAILED_STATUS
            assert record["error_type"] == "ChaosCrash"
            assert record["attempts"] == 2
            assert record["config"]["cache_dir"] is None
        # resume skips quarantined candidates entirely (no chaos now)
        records2, stats2 = run_candidates(configs, journal=journal,
                                          jobs=1)
        assert stats2["journal_hits"] == len(configs)
        assert stats2["evaluated"] == 0
        assert records2 == records

    def test_quarantined_excluded_from_report(self, tmp_path):
        space = tiny_space()
        chaos.install(ChaosConfig(crash_rate=1.0, max_attempt=99))
        try:
            report = run_exploration(space, str(tmp_path / "journal"),
                                     jobs=1, max_retries=0)
        finally:
            chaos.uninstall()
        assert report.failed == len(space.grid())
        assert report.records == ()
        assert report.frontier == ()
        assert report.to_dict()["failed"] == report.failed

    def test_timeout_then_retry_succeeds(self, tmp_path):
        space = tiny_space(designs=("conventional",))
        (config,) = space.grid(str(tmp_path / "cache"))
        journal = ExplorationJournal.open(str(tmp_path / "journal"),
                                          space)
        # first attempt stalls 30s; the 1s deadline kills it, the retry
        # is past max_attempt and runs clean
        chaos.install(ChaosConfig(slow_rate=1.0, slow_s=30.0,
                                  max_attempt=1))
        started = time.monotonic()
        try:
            records, stats = run_candidates(
                [config], journal=journal, jobs=1, timeout_s=1.0,
                backoff_s=0.001)
        finally:
            chaos.uninstall()
        assert time.monotonic() - started < 25.0      # did not sleep 30s
        assert stats["retries"] == 1
        assert stats["failed"] == 0
        assert records[0]["metrics"]["accuracy"] > 0.5

    def test_corrupt_record_heals_on_resume(self, tmp_path, capfd):
        space = tiny_space(designs=("conventional",))
        journal_dir = str(tmp_path / "journal")
        run_exploration(space, journal_dir, jobs=1)
        before = record_bytes(journal_dir)
        (victim,) = glob.glob(os.path.join(journal_dir, "records",
                                           "*.json"))
        with open(victim, "w") as handle:
            handle.write('{"format": 1, "config_digest": "trunc')
        capfd.readouterr()
        report = run_exploration(space, journal_dir, jobs=1)
        assert report.journal_hits == 0
        assert report.evaluated == 1
        assert "corrupt journal record" in capfd.readouterr().err
        assert record_bytes(journal_dir) == before

    def test_non_dict_record_is_silent_miss(self, tmp_path):
        space = tiny_space()
        journal = ExplorationJournal.open(str(tmp_path / "journal"),
                                          space)
        digest = space.grid()[0].digest()
        with open(os.path.join(journal.records_dir,
                               f"{digest}.json"), "w") as handle:
            json.dump([1, 2, 3], handle)
        assert journal.load_record(digest) is None


# ----------------------------------------------------------------------
# SIGTERM mid-exploration: crash-safe journals and flushed trace shards
# ----------------------------------------------------------------------
class TestSigtermExplore:
    def test_no_orphan_temp_files_and_resumable(self, tmp_path):
        space_path = tmp_path / "space.json"
        space = tiny_space(seeds=(0, 1),
                           budgets=({**TINY, "max_epochs": 6},))
        space_path.write_text(json.dumps(space.to_dict()))
        journal_dir = str(tmp_path / "journal")
        trace_path = str(tmp_path / "trace.jsonl")
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(os.path.dirname(
                       os.path.dirname(os.path.abspath(__file__))),
                       "src"))
        child = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "explore",
             str(space_path), "--jobs", "2", "--journal", journal_dir,
             "--trace", trace_path, "--quiet"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        time.sleep(3.0)                  # let workers get mid-candidate
        child.send_signal(signal.SIGTERM)
        child.wait(timeout=30.0)

        # crash safety: atomic writes leave no orphaned temp files
        # anywhere under the journal (records or shared stage cache)
        strays = glob.glob(os.path.join(journal_dir, "**", "*.tmp"),
                           recursive=True)
        assert strays == []
        for path in glob.glob(os.path.join(journal_dir, "records",
                                           "*.json")):
            with open(path) as handle:
                json.load(handle)        # every record parses

        # worker trace shards are line-buffered: whatever spans
        # completed before the SIGTERM are intact JSONL
        for shard in glob.glob(f"{trace_path}.shard-*.jsonl"):
            with open(shard) as handle:
                for line in handle:
                    if line.endswith("\n"):
                        json.loads(line)

        # and the journal resumes to completion
        report = run_exploration(space, journal_dir, jobs=1)
        assert len(report.records) == len(space.grid())
        assert report.failed == 0
