"""Cross-process telemetry tests: worker trace shards, shard merging,
trace diffing, and the serial-vs-parallel structural identity of a
traced exploration (merged span forests match, journals stay
bit-identical)."""

import json
import multiprocessing
import os
import time

import pytest

from repro import obs
from repro.explore import SearchSpace, run_exploration
from repro.obs.merge import (
    find_shards,
    load_shard,
    merge_trace,
    write_merged_trace,
)
from repro.obs.shard import MAX_SHARDS, ShardTracer, fork_shard, shard_path
from repro.obs.stats import (
    TraceError,
    diff_traces,
    format_trace_diff,
    load_trace,
    span_paths,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker shards require the fork start method")


@pytest.fixture(autouse=True)
def obs_isolation():
    """Every test starts and ends with obs disabled and empty."""
    obs.reset()
    yield
    obs.reset()


def _fork_traced_worker(trace, body):
    """Fork one traced child running *body*; wait for a clean exit."""
    obs.enable(trace_path=trace)
    with obs.span("parent.root"):
        ctx = multiprocessing.get_context("fork")
        process = ctx.Process(target=body)
        process.start()
        process.join(timeout=30)
    obs.disable()
    assert process.exitcode == 0


def _child_two_spans():
    with obs.span("child.outer", worker=1):
        with obs.span("child.inner"):
            time.sleep(0.001)


# ----------------------------------------------------------------------
# shard files
# ----------------------------------------------------------------------
class TestShards:
    def test_shard_path(self):
        assert shard_path("out.jsonl", 3) == "out.jsonl.shard-3.jsonl"

    def test_forked_child_writes_a_valid_shard(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        _fork_traced_worker(trace, _child_two_spans)

        shards = find_shards(trace)
        assert shards == [shard_path(trace, 1)]
        shard = load_shard(shards[0])
        assert shard.meta["format"] == obs.TRACE_FORMAT
        assert shard.meta["shard"] == 1
        assert shard.meta["parent_pid"] == load_trace(trace).meta["pid"]
        assert shard.meta["pid"] != shard.meta["parent_pid"]
        assert [n.name for n in shard.roots] == ["child.outer"]
        assert [n.name for n in shard.roots[0].children] == ["child.inner"]

    def test_clean_child_exit_appends_metrics_line(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        _fork_traced_worker(trace, _child_two_spans)
        with open(find_shards(trace)[0]) as handle:
            last = json.loads(handle.readlines()[-1])
        assert last["type"] == "metrics"

    def test_shard_records_fork_graft_point(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        _fork_traced_worker(trace, _child_two_spans)
        parent = load_trace(trace)
        shard = load_shard(find_shards(trace)[0])
        root_id = next(e["id"] for e in parent.events
                       if e["name"] == "parent.root")
        assert shard.meta["forked_under"] == root_id

    def test_parent_trace_stays_well_formed(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        _fork_traced_worker(trace, _child_two_spans)
        parent = load_trace(trace)
        assert [n.name for n in parent.roots] == ["parent.root"]

    def test_fork_shard_rejects_in_memory_tracer(self):
        obs.enable()        # no trace file
        with pytest.raises(ValueError, match="in-memory"):
            fork_shard(obs.tracer())

    def test_shard_indices_claimed_exclusively(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        obs.enable(trace_path=trace)
        # simulate an already-claimed slot: the next shard must skip it
        open(shard_path(trace, 1), "x").close()
        shard = fork_shard(obs.tracer())
        try:
            assert isinstance(shard, ShardTracer)
            assert shard.shard_index == 2
            assert shard.path == shard_path(trace, 2)
        finally:
            shard.close()
        assert MAX_SHARDS >= 1000

    def test_find_shards_sorted_by_index_not_lexically(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        open(trace, "w").close()
        for index in (10, 2, 1):
            open(shard_path(trace, index), "w").close()
        assert [os.path.basename(p) for p in find_shards(trace)] == [
            "t.jsonl.shard-1.jsonl", "t.jsonl.shard-2.jsonl",
            "t.jsonl.shard-10.jsonl"]


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
class TestMerge:
    def test_merge_grafts_worker_spans_under_fork_span(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        _fork_traced_worker(trace, _child_two_spans)
        merged = merge_trace(trace)
        assert [n.name for n in merged.roots] == ["parent.root"]
        child_names = [n.name for n in merged.roots[0].children]
        assert "child.outer" in child_names
        assert merged.meta["merged_shards"] == 1

    def test_merge_renumbers_ids_globally(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        _fork_traced_worker(trace, _child_two_spans)
        merged = merge_trace(trace)
        ids = [event["id"] for event in merged.events]
        assert len(ids) == len(set(ids))
        assert sorted(ids) == list(range(1, len(ids) + 1))

    def test_merge_preserves_worker_pids(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        _fork_traced_worker(trace, _child_two_spans)
        merged = merge_trace(trace)
        pids = {event["pid"] for event in merged.events}
        assert len(pids) == 2        # parent + one worker

    def test_merged_trace_round_trips_through_file(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        _fork_traced_worker(trace, _child_two_spans)
        out = str(tmp_path / "merged.jsonl")
        write_merged_trace(trace, out)
        # no shards next to the merged file: loads as a plain trace
        loaded = load_trace(out)
        assert len(loaded.events) == len(merge_trace(trace).events)
        assert [n.name for n in loaded.roots] == ["parent.root"]

    def test_plain_trace_is_not_a_shard(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        obs.enable(trace_path=trace)
        with obs.span("a"):
            pass
        obs.disable()
        with pytest.raises(TraceError, match="not a worker shard"):
            load_shard(trace)

    def test_merge_rejects_foreign_shard(self, tmp_path):
        trace_a = str(tmp_path / "a.jsonl")
        trace_b = str(tmp_path / "b.jsonl")
        _fork_traced_worker(trace_a, _child_two_spans)
        obs.reset()
        _fork_traced_worker(trace_b, _child_two_spans)
        # a shard of b presented as a shard of a: parent pid mismatch
        # (same process wrote both parents, so fake a different pid)
        shard_of_b = find_shards(trace_b)[0]
        lines = open(shard_of_b).read().splitlines()
        meta = json.loads(lines[0])
        meta["parent_pid"] = meta["parent_pid"] + 1
        lines[0] = json.dumps(meta)
        open(shard_of_b, "w").write("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="forked from pid"):
            merge_trace(trace_b)

    def test_merge_rejects_malformed_shard(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        _fork_traced_worker(trace, _child_two_spans)
        with open(shard_path(trace, 2), "w") as handle:
            handle.write("this is not json\n")
        with pytest.raises(TraceError):
            merge_trace(trace)

    def test_merge_without_shards_is_identity(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        obs.enable(trace_path=trace)
        with obs.span("solo"):
            pass
        obs.disable()
        merged = merge_trace(trace)
        assert merged.meta["merged_shards"] == 0
        assert [n.name for n in merged.roots] == ["solo"]


# ----------------------------------------------------------------------
# trace diffing
# ----------------------------------------------------------------------
def _write_trace(path, spans, metrics=()):
    """Hand-author a minimal repro-trace/1 file for diff tests."""
    with open(path, "w") as handle:
        handle.write(json.dumps({
            "type": "meta", "format": obs.TRACE_FORMAT,
            "repro_version": "test", "pid": 1, "created_unix": 0}) + "\n")
        for index, (name, parent, dur_us) in enumerate(spans, start=1):
            handle.write(json.dumps({
                "type": "span",
                "name": name, "ph": "X", "id": index, "parent": parent,
                "ts": index, "dur": dur_us, "pid": 1, "tid": 1,
                "cpu_ms": dur_us / 1e3, "rss_peak_kb": 1000,
                "rss_grew_kb": 0, "error": None, "args": {}}) + "\n")
        handle.write(json.dumps({"type": "metrics",
                                 "metrics": list(metrics)}) + "\n")
    return path


class TestDiff:
    def test_aligns_by_span_path_and_flags_significant(self, tmp_path):
        a = load_trace(_write_trace(
            str(tmp_path / "a.jsonl"),
            [("root", None, 100_000), ("step", 1, 50_000)]))
        b = load_trace(_write_trace(
            str(tmp_path / "b.jsonl"),
            [("root", None, 100_000), ("step", 1, 80_000)]))
        diff = diff_traces(a, b, threshold_pct=5.0)
        rows = {row.path: row for row in diff.significant()}
        assert "root/step" in rows
        assert rows["root/step"].wall_pct == pytest.approx(60.0)
        assert "root" not in rows          # unchanged

    def test_appeared_and_disappeared_paths_are_significant(self, tmp_path):
        a = load_trace(_write_trace(str(tmp_path / "a.jsonl"),
                                    [("root", None, 1000),
                                     ("gone", 1, 1000)]))
        b = load_trace(_write_trace(str(tmp_path / "b.jsonl"),
                                    [("root", None, 1000),
                                     ("new", 1, 1000)]))
        paths = {row.path for row in diff_traces(a, b).significant()}
        assert paths == {"root/gone", "root/new"}

    def test_metric_deltas(self, tmp_path):
        row_a = {"name": "kernels.calls", "kind": "counter",
                 "labels": {"backend": "fast"}, "value": 10}
        row_b = dict(row_a, value=14)
        a = load_trace(_write_trace(str(tmp_path / "a.jsonl"),
                                    [("root", None, 1000)], [row_a]))
        b = load_trace(_write_trace(str(tmp_path / "b.jsonl"),
                                    [("root", None, 1000)], [row_b]))
        diff = diff_traces(a, b)
        deltas = {(d.name, d.labels): d.delta for d in diff.metrics}
        assert deltas[("kernels.calls", "backend=fast")] == 4

    def test_format_trace_diff_renders(self, tmp_path):
        a = load_trace(_write_trace(str(tmp_path / "a.jsonl"),
                                    [("root", None, 100_000)]))
        b = load_trace(_write_trace(str(tmp_path / "b.jsonl"),
                                    [("root", None, 200_000)]))
        text = format_trace_diff(diff_traces(a, b))
        assert "root" in text
        assert "+100.0%" in text

    def test_span_paths_counts_repeats(self, tmp_path):
        trace = load_trace(_write_trace(
            str(tmp_path / "a.jsonl"),
            [("root", None, 1000), ("step", 1, 400), ("step", 1, 600)]))
        stats = span_paths(trace)
        assert stats["root/step"].count == 2
        assert stats["root/step"].wall_ms == pytest.approx(1.0)


# ----------------------------------------------------------------------
# traced exploration: serial == parallel, journals stay bit-identical
# ----------------------------------------------------------------------
TINY = {"name": "tiny", "n_train": 250, "n_test": 120,
        "max_epochs": 3, "retrain_epochs": 2}


def _tiny_space():
    return SearchSpace(app="face", designs=("conventional", "asm1"),
                       budgets=(TINY,), seeds=(0, 1))


def _normalize(node):
    """Structure key: names + parentage + candidate identity, no timing.

    Children are sorted (parallel completion order is nondeterministic)
    and only the identity attributes of candidate spans are kept (other
    spans' args legitimately differ between jobs=1 and jobs=N, e.g. the
    ``jobs`` attribute of ``explore.map``).
    """
    args = node.event.get("args", {})
    identity = tuple(sorted(
        (k, v) for k, v in args.items()
        if node.name == "explore.candidate"
        and k in ("design", "seed", "digest")))
    return (node.name, identity,
            tuple(sorted(_normalize(child) for child in node.children)))


def _journal_bytes(journal_dir):
    records = os.path.join(journal_dir, "records")
    return {name: open(os.path.join(records, name), "rb").read()
            for name in sorted(os.listdir(records))}


@pytest.mark.slow
def test_traced_parallel_explore_matches_serial(tmp_path):
    cache = str(tmp_path / "cache")
    space = _tiny_space()

    # untraced first: its journal is the bit-identity reference and it
    # warms the shared stage cache, so both traced runs see the same
    # cache state (cold vs. warm runs legitimately differ in span
    # structure — a cold stage has train.epoch children, a warm one not)
    untraced_dir = str(tmp_path / "untraced")
    run_exploration(space, untraced_dir, cache_dir=cache, jobs=4)

    serial_dir = str(tmp_path / "serial")
    serial_trace = str(tmp_path / "serial.jsonl")
    obs.enable(trace_path=serial_trace)
    run_exploration(space, serial_dir, cache_dir=cache, jobs=1)
    obs.disable()
    obs.reset()

    parallel_dir = str(tmp_path / "parallel")
    parallel_trace = str(tmp_path / "parallel.jsonl")
    obs.enable(trace_path=parallel_trace)
    run_exploration(space, parallel_dir, cache_dir=cache, jobs=4)
    obs.disable()
    obs.reset()

    # the parallel run actually sharded, with candidate spans in workers
    shards = find_shards(parallel_trace)
    assert shards, "a traced --jobs 4 run must leave worker shards"
    worker_candidates = [
        event for path in shards for event in load_shard(path).events
        if event["name"] == "explore.candidate"]
    assert worker_candidates
    parent_pid = load_trace(parallel_trace).meta["pid"]
    assert all(e["pid"] != parent_pid for e in worker_candidates)

    # merged span forests are structurally identical
    serial = merge_trace(serial_trace)
    parallel = merge_trace(parallel_trace)
    assert sorted(_normalize(root) for root in serial.roots) == \
        sorted(_normalize(root) for root in parallel.roots)

    # journals are bit-identical: serial vs parallel vs untraced
    assert _journal_bytes(serial_dir) == _journal_bytes(parallel_dir)
    assert _journal_bytes(serial_dir) == _journal_bytes(untraced_dir)
