"""Setuptools shim.

Kept so that ``pip install -e .`` works on environments whose pip/setuptools
lack PEP 660 editable-wheel support (no ``wheel`` package installed); all
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
